//! The synthesis front door: one strategy-driven driver for every search
//! heuristic of the paper, plus portfolio execution and batch experiment
//! serving.
//!
//! Historically each heuristic (SF, SAS/SAR annealing, OS, OR, HOPA
//! seeding) was a free function hand-wiring its own [`Evaluator`], loop and
//! result struct, and every experiment binary re-implemented the same
//! driver glue. This module replaces that with three composable layers:
//!
//! 1. **[`Synthesis`]** — a builder-style driver running *one*
//!    [`Strategy`] against *one* system:
//!
//!    ```no_run
//!    use mcs_core::AnalysisParams;
//!    use mcs_gen::{generate, GeneratorParams};
//!    use mcs_opt::{Budget, Sa, SaParams, Synthesis};
//!
//!    let system = generate(&GeneratorParams::paper_sized(2, 1));
//!    let report = Synthesis::builder(&system)
//!        .analysis(AnalysisParams::default())
//!        .strategy(Sa::resources(SaParams::default()))
//!        .budget(Budget::evals(200_000))
//!        .run()
//!        .expect("the SA start configuration is analyzable");
//!    println!("schedulable: {}", report.best.is_schedulable());
//!    ```
//!
//! 2. **[`Portfolio`]** — N strategies (or N seeds of one strategy) racing
//!    on the same instance across rayon workers, with deterministic winner
//!    selection ([`Selection::FirstSchedulable`] or
//!    [`Selection::BestCost`]).
//!
//! 3. **[`ExperimentRunner`]** — a batch queue of (instance × strategy)
//!    jobs fanned out across cores; the serving layer the `fig9` sweeps
//!    sit on. Every job produces an [`ExperimentRecord`] with a stable
//!    JSON-lines rendering (via [`mcs_core::json_line`]).
//!
//! # The `Strategy` contract
//!
//! A [`Strategy`] drives the search through a [`SearchCtx`], which *borrows*
//! one shared [`Evaluator`] — the reusable analysis context with its
//! delta-RTA machinery — instead of constructing its own:
//!
//! * every candidate analysis goes through [`SearchCtx::evaluate`] or
//!   [`SearchCtx::evaluate_delta`] (both count against the [`Budget`]);
//! * the strategy reports improvements with [`SearchCtx::record_incumbent`]
//!   — the driver owns the incumbent, its δΓ trajectory, and the final
//!   materialization of the winning configuration;
//! * long-running loops poll [`SearchCtx::exhausted`] and return early when
//!   the budget is spent or the run is cancelled (**cooperative**
//!   cancellation: an exhausted context still honors evaluation calls, so a
//!   strategy may finish the candidate it is on);
//! * because the delta path is bit-identical to the full fixed point,
//!   a strategy's results do not depend on what the shared evaluator
//!   analyzed before it ran.
//!
//! # Events and observers
//!
//! Strategies narrate the search as structured [`SearchEvent`]s —
//! accepted/rejected moves, new incumbents, temperature epochs, phase
//! changes — delivered synchronously to every [`Observer`] attached to the
//! driver. Observers must not assume any event other than `Started` (first)
//! and `Finished` (last, emitted even on an error or an exhausted budget
//! once an incumbent exists); which events appear in between is up to the
//! strategy.
//!
//! # Determinism
//!
//! Every strategy shipped here is a pure function of (system, analysis
//! params, strategy params, budget): a seeded run reproduces its **entire
//! event stream** — same events, same order, same payloads — and therefore
//! its report, bit for bit. [`Portfolio::run`] and [`ExperimentRunner::run`]
//! preserve that: results are collected in submission order regardless of
//! worker interleaving, and winner selection is a deterministic function of
//! the collected reports (ties break toward the lowest entry index). The
//! only escape hatch is [`Portfolio::race`], which trades reproducibility
//! of the *losing* reports for wall-clock time.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rayon::prelude::*;

use mcs_core::{
    AnalysisError, AnalysisParams, BatchRequest, BatchScratch, DeltaSeeds, EvalSummary, Evaluator,
};
use mcs_model::{System, SystemConfig};

use crate::cost::{materialize, resource_cost, Evaluation};
use crate::moves::Move;

// ---------------------------------------------------------------------------
// Budget & cancellation
// ---------------------------------------------------------------------------

/// A budget for one synthesis run, with two independent axes: a
/// **evaluation-count** axis ([`Budget::evals`]) and a **wall-clock** axis
/// ([`Budget::wall_clock`]); [`Budget::evals_and_time`] combines both. The
/// run exhausts as soon as *either* axis does, and the report records which
/// one fired first ([`SynthesisReport::exhausted_by`]).
///
/// The budget is **cooperative**: strategies poll
/// [`SearchCtx::exhausted`] between candidates and wind down; a strategy
/// mid-candidate may finish it, so a run can end a few evaluations (or
/// milliseconds) past the limit. [`Budget::UNLIMITED`] (the default) never
/// exhausts.
///
/// The wall-clock axis makes a run *nondeterministic in where it stops*
/// (machine-load dependent) but never in what it computes up to that point;
/// a time-truncated run can be continued bit-identically through
/// [`Synthesis::resume_from`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Budget {
    max_evaluations: u64,
    max_duration: Option<Duration>,
}

impl Budget {
    /// No limit: the strategy runs to its natural completion.
    pub const UNLIMITED: Budget = Budget {
        max_evaluations: u64::MAX,
        max_duration: None,
    };

    /// At most `n` schedulability evaluations.
    pub fn evals(n: u64) -> Self {
        Budget {
            max_evaluations: n,
            ..Budget::UNLIMITED
        }
    }

    /// At most `limit` of wall-clock time (measured from
    /// [`Synthesis::run`] entry).
    pub fn wall_clock(limit: Duration) -> Self {
        Budget {
            max_duration: Some(limit),
            ..Budget::UNLIMITED
        }
    }

    /// Both axes: at most `n` evaluations *and* at most `limit` wall-clock
    /// time, whichever exhausts first.
    pub fn evals_and_time(n: u64, limit: Duration) -> Self {
        Budget {
            max_evaluations: n,
            max_duration: Some(limit),
        }
    }

    /// Tightens (or sets) the wall-clock axis to at most `limit`, keeping
    /// the evaluation axis. Used by the serving layer to overlay a per-job
    /// deadline onto whatever budget the job already carries.
    #[must_use]
    pub fn with_wall_clock(self, limit: Duration) -> Self {
        Budget {
            max_duration: Some(self.max_duration.map_or(limit, |d| d.min(limit))),
            ..self
        }
    }

    /// The evaluation limit, `None` when unlimited.
    pub fn max_evaluations(&self) -> Option<u64> {
        (self.max_evaluations != u64::MAX).then_some(self.max_evaluations)
    }

    /// The wall-clock limit, `None` when unlimited.
    pub fn max_duration(&self) -> Option<Duration> {
        self.max_duration
    }
}

impl Default for Budget {
    fn default() -> Self {
        Budget::UNLIMITED
    }
}

/// Which budget axis ended a run (see [`SearchCtx::exhausted`]).
///
/// When several axes are exhausted at the same poll, the first in
/// (evaluations, wall clock, cancellation) order is recorded.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BudgetAxis {
    /// The evaluation-count limit was reached.
    Evaluations,
    /// The wall-clock limit (deadline) passed.
    WallClock,
    /// The run's [`CancelToken`] was cancelled.
    Cancelled,
}

impl BudgetAxis {
    /// A stable lower-case name (`"evaluations"`, `"wall_clock"`,
    /// `"cancelled"`) for machine-readable records.
    pub fn as_str(&self) -> &'static str {
        match self {
            BudgetAxis::Evaluations => "evaluations",
            BudgetAxis::WallClock => "wall_clock",
            BudgetAxis::Cancelled => "cancelled",
        }
    }
}

/// A shareable cooperative cancellation flag.
///
/// Cloning shares the flag; [`CancelToken::cancel`] makes every
/// [`SearchCtx`] carrying a clone report [`exhausted`](SearchCtx::exhausted)
/// from then on. Used by [`Portfolio::race`] to stop the losers once a
/// winner emerges.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Raises the flag.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// `true` once any clone of this token was cancelled.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// Events & observers
// ---------------------------------------------------------------------------

/// One structured step of a synthesis run, in emission order.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SearchEvent {
    /// The driver handed control to the strategy.
    Started {
        /// [`Strategy::name`] of the running strategy.
        strategy: &'static str,
    },
    /// A candidate was analyzed and kept or discarded.
    Evaluated {
        /// Evaluations performed so far (including this one).
        evaluations: u64,
        /// The candidate's summary.
        summary: EvalSummary,
        /// Whether the strategy kept the candidate (an annealer accepting a
        /// move, a greedy search adopting a new local best).
        accepted: bool,
    },
    /// A candidate was structurally infeasible (analysis error); nothing
    /// was learned about its cost.
    Infeasible {
        /// Evaluations performed so far (including this attempt).
        evaluations: u64,
    },
    /// The driver recorded a new global incumbent.
    NewIncumbent {
        /// Evaluations performed when the incumbent was found.
        evaluations: u64,
        /// The incumbent's summary.
        summary: EvalSummary,
    },
    /// An annealing strategy cooled into a new temperature.
    TemperatureEpoch {
        /// Evaluations performed so far.
        evaluations: u64,
        /// The temperature after cooling.
        temperature: f64,
    },
    /// A composite strategy moved to its next phase (e.g. OR finishing
    /// schedule optimization and starting a hill climb).
    Phase {
        /// A stable, strategy-defined phase name.
        name: &'static str,
    },
    /// The run ended; always the final event.
    Finished {
        /// Total evaluations performed.
        evaluations: u64,
        /// Whether the budget was exhausted (or the run cancelled) before
        /// the strategy finished naturally.
        exhausted: bool,
    },
}

/// A pluggable listener for [`SearchEvent`]s.
///
/// Observers run synchronously inside the search loop; keep `on_event`
/// cheap. `&mut O` also implements `Observer`, so an observer can be
/// borrowed into a run and inspected afterwards.
pub trait Observer {
    /// Called for every event, in emission order.
    fn on_event(&mut self, event: &SearchEvent);
}

impl<O: Observer + ?Sized> Observer for &mut O {
    fn on_event(&mut self, event: &SearchEvent) {
        (**self).on_event(event)
    }
}

/// An [`Observer`] counting events per kind — a cheap smoke signal for
/// tests and progress reporting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EventCounter {
    /// `Evaluated` events seen.
    pub evaluated: u64,
    /// `Evaluated` events with `accepted == true`.
    pub accepted: u64,
    /// `Infeasible` events seen.
    pub infeasible: u64,
    /// `NewIncumbent` events seen.
    pub incumbents: u64,
    /// `TemperatureEpoch` events seen.
    pub epochs: u64,
    /// `Phase` events seen.
    pub phases: u64,
}

impl Observer for EventCounter {
    fn on_event(&mut self, event: &SearchEvent) {
        match event {
            SearchEvent::Evaluated { accepted, .. } => {
                self.evaluated += 1;
                if *accepted {
                    self.accepted += 1;
                }
            }
            SearchEvent::Infeasible { .. } => self.infeasible += 1,
            SearchEvent::NewIncumbent { .. } => self.incumbents += 1,
            SearchEvent::TemperatureEpoch { .. } => self.epochs += 1,
            SearchEvent::Phase { .. } => self.phases += 1,
            SearchEvent::Started { .. } | SearchEvent::Finished { .. } => {}
        }
    }
}

// ---------------------------------------------------------------------------
// Objectives & errors
// ---------------------------------------------------------------------------

/// The two cost axes of the paper, as a selectable objective.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Objective {
    /// Minimize the degree of schedulability δΓ.
    Schedule,
    /// Minimize the total buffer need `s_total`, ranking unschedulable
    /// configurations after every schedulable one.
    Resources,
}

impl Objective {
    /// The scalar this objective minimizes for a summary.
    pub fn cost(&self, summary: &EvalSummary) -> i128 {
        match self {
            Objective::Schedule => summary.schedule_cost(),
            Objective::Resources => resource_cost(summary),
        }
    }

    /// The scalar this objective minimizes for a full evaluation.
    pub fn evaluation_cost(&self, evaluation: &Evaluation) -> i128 {
        match self {
            Objective::Schedule => evaluation.schedule_cost(),
            Objective::Resources => evaluation.resource_cost(),
        }
    }
}

/// Why a synthesis run failed to produce a report.
#[derive(Debug)]
pub enum SynthesisError {
    /// The strategy hit a structurally invalid configuration it could not
    /// recover from (e.g. an unanalyzable start configuration).
    Analysis(AnalysisError),
    /// The strategy finished without recording any incumbent (budget spent
    /// or cancelled before the first feasible candidate).
    NoIncumbent,
    /// The run panicked and was isolated by the serving layer (see
    /// [`crate::serve`]); the payload is the panic message.
    Panicked(String),
    /// A [`Synthesis::resume_from`] continuation failed to reproduce the
    /// checkpoint trajectory — the strategy, its parameters, the analysis
    /// parameters or the system differ from the interrupted run.
    ResumeDivergence {
        /// Checkpoint trajectory points reproduced before the divergence.
        matched: usize,
        /// Total points the checkpoint carried.
        expected: usize,
    },
}

impl std::fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SynthesisError::Analysis(e) => write!(f, "synthesis failed to analyze: {e}"),
            SynthesisError::NoIncumbent => {
                write!(f, "the strategy finished without recording an incumbent")
            }
            SynthesisError::Panicked(message) => write!(f, "the strategy panicked: {message}"),
            SynthesisError::ResumeDivergence { matched, expected } => write!(
                f,
                "resume divergence: the continuation reproduced {matched} of {expected} \
                 checkpoint incumbents; strategy, parameters and system must match the \
                 interrupted run exactly"
            ),
        }
    }
}

impl std::error::Error for SynthesisError {}

impl From<AnalysisError> for SynthesisError {
    fn from(e: AnalysisError) -> Self {
        SynthesisError::Analysis(e)
    }
}

/// One point of the degree-of-schedulability trajectory: the incumbent
/// summary after `evaluations` analyses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TrajectoryPoint {
    /// Evaluations performed when this incumbent was recorded.
    pub evaluations: u64,
    /// The incumbent's summary at that point.
    pub summary: EvalSummary,
}

// ---------------------------------------------------------------------------
// The search context
// ---------------------------------------------------------------------------

/// What the driver hands a [`Strategy`]: the shared [`Evaluator`], the
/// budget/cancellation state, incumbent tracking and the observer fan-out.
pub struct SearchCtx<'s, 'a, 'run> {
    evaluator: &'run mut Evaluator<'s>,
    observers: &'run mut [Box<dyn Observer + 'a>],
    budget: Budget,
    /// Wall-clock cut-off derived from the budget at `run()` entry.
    deadline: Option<Instant>,
    cancel: Option<CancelToken>,
    evaluations: u64,
    /// The first budget axis observed exhausted; sticky (every axis is
    /// monotone, so once a poll reports exhausted the run stays exhausted).
    exhausted_axis: Cell<Option<BudgetAxis>>,
    incumbent: Option<(EvalSummary, SystemConfig)>,
    trajectory: Vec<TrajectoryPoint>,
    replay: Option<ReplayState>,
    /// Candidate fan-out state of the batch API
    /// ([`evaluate_candidates`](SearchCtx::evaluate_candidates)): the
    /// evaluator lanes, the request slots (allocation-reused across
    /// batches) and the results of the last batch.
    batch: BatchScratch<'s>,
    batch_requests: Vec<BatchRequest>,
    batch_len: usize,
    batch_results: Vec<Result<EvalSummary, AnalysisError>>,
}

impl<'s, 'a, 'run> std::fmt::Debug for SearchCtx<'s, 'a, 'run> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SearchCtx").finish_non_exhaustive()
    }
}

/// Bookkeeping of a [`Synthesis::resume_from`] continuation: events up to
/// the checkpoint are replayed silently and every replayed incumbent is
/// verified against the checkpoint trajectory.
struct ReplayState {
    /// Evaluation count of the interrupted run (the checkpoint cut).
    until: u64,
    /// The checkpoint's trajectory, to be reproduced point by point.
    expected: Vec<TrajectoryPoint>,
    /// Checkpoint trajectory points matched so far.
    matched: usize,
    /// A replayed incumbent disagreed with the checkpoint.
    diverged: bool,
}

impl<'s, 'a, 'run> SearchCtx<'s, 'a, 'run> {
    /// The system under synthesis.
    pub fn system(&self) -> &'s System {
        self.evaluator.system()
    }

    /// The analysis parameters of the run.
    pub fn params(&self) -> &AnalysisParams {
        self.evaluator.params()
    }

    /// Shared read access to the evaluator (e.g. for
    /// [`MoveSampler::sample`](crate::MoveSampler::sample) anchoring or
    /// outcome materialization).
    pub fn evaluator(&self) -> &Evaluator<'s> {
        self.evaluator
    }

    /// Escape hatch: direct mutable access to the evaluator. Analyses run
    /// through it are **not** counted against the budget; prefer
    /// [`evaluate`](Self::evaluate) / [`evaluate_delta`](Self::evaluate_delta).
    pub fn evaluator_mut(&mut self) -> &mut Evaluator<'s> {
        self.evaluator
    }

    /// Evaluations performed so far (full and delta alike).
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// `true` once the budget is spent (either axis) or the run was
    /// cancelled. Strategies poll this between candidates and wind down.
    ///
    /// The verdict is sticky: the first exhausted poll pins the reported
    /// axis ([`exhausted_by`](Self::exhausted_by)) and every later poll
    /// reports exhausted without re-examining the clock.
    pub fn exhausted(&self) -> bool {
        if self.exhausted_axis.get().is_some() {
            return true;
        }
        let axis = if self.evaluations >= self.budget.max_evaluations {
            Some(BudgetAxis::Evaluations)
        } else if self.deadline.is_some_and(|d| Instant::now() >= d) {
            Some(BudgetAxis::WallClock)
        } else if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
            Some(BudgetAxis::Cancelled)
        } else {
            None
        };
        self.exhausted_axis.set(axis);
        axis.is_some()
    }

    /// The budget axis that ended the run, `None` while no poll has
    /// reported exhausted yet.
    pub fn exhausted_by(&self) -> Option<BudgetAxis> {
        self.exhausted_axis.get()
    }

    /// Runs the full analysis of `config`, counting against the budget.
    ///
    /// # Errors
    ///
    /// Propagates [`AnalysisError`] for structurally invalid
    /// configurations; searches treat such candidates as infeasible.
    pub fn evaluate(&mut self, config: &SystemConfig) -> Result<EvalSummary, AnalysisError> {
        self.evaluations += 1;
        self.evaluator.evaluate(config)
    }

    /// Runs the incremental (delta-RTA) analysis of `config`, counting
    /// against the budget. Bit-identical to [`evaluate`](Self::evaluate);
    /// `seeds` must over-approximate the difference to the evaluator's last
    /// completed analysis (see [`Evaluator::evaluate_delta`]).
    ///
    /// # Errors
    ///
    /// Propagates [`AnalysisError`] exactly like a full evaluation; the
    /// evaluator's state is unchanged on error, so accumulated seeds stay
    /// valid across a revert.
    pub fn evaluate_delta(
        &mut self,
        config: &SystemConfig,
        seeds: &DeltaSeeds,
    ) -> Result<EvalSummary, AnalysisError> {
        self.evaluations += 1;
        self.evaluator.evaluate_delta(config, seeds)
    }

    // -- Candidate batches ---------------------------------------------------
    //
    // A strategy that fans out sibling candidates (OS's per-position slot
    // scans, OR's neighborhood scan, SA's speculative proposal window)
    // submits them all at once and then *consumes* the pre-computed results
    // in its original sequential order:
    //
    //   ctx.begin_candidates();
    //   for c in candidates { ctx.push_candidate(&config_c, &seeds_c); }
    //   ctx.evaluate_candidates_queued();
    //   for i in 0..n { ... ctx.consume_candidate(i) ... }
    //
    // Evaluating the batch does NOT count against the budget; each
    // `consume_candidate` counts exactly one evaluation, at the moment the
    // sequential loop would have performed it. Results are bit-identical to
    // sequential `evaluate_delta` calls from the same base state
    // ([`Evaluator::evaluate_batch`]), so the strategy's decisions — and
    // with them the whole event stream — are unchanged; speculative
    // candidates that are never consumed (budget exhausted mid-scan, an SA
    // window broken by an accept) simply never existed as far as the budget
    // and the observers are concerned.

    /// Starts a fresh candidate batch, clearing any previous one (request
    /// slots and lanes keep their allocations).
    pub fn begin_candidates(&mut self) {
        self.batch_len = 0;
        self.batch_results.clear();
    }

    /// Appends one candidate — a full configuration plus delta seeds
    /// relative to the evaluator's last completed analysis, exactly as
    /// [`evaluate_delta`](Self::evaluate_delta) would take them — and
    /// returns its index in the batch.
    pub fn push_candidate(&mut self, config: &SystemConfig, seeds: &DeltaSeeds) -> usize {
        let index = self.batch_len;
        if self.batch_requests.len() <= index {
            self.batch_requests.push(BatchRequest::default());
        }
        let slot = &mut self.batch_requests[index];
        slot.config.clone_from(config);
        slot.seeds.clear();
        slot.seeds.merge(seeds);
        self.batch_len = index + 1;
        index
    }

    /// Evaluates every pushed candidate data-parallel across the batch
    /// lanes ([`Evaluator::evaluate_batch`]). Does **not** count against
    /// the budget — consumption does.
    pub fn evaluate_candidates_queued(&mut self) {
        self.batch_results = self
            .evaluator
            .evaluate_batch(&mut self.batch, &self.batch_requests[..self.batch_len]);
    }

    /// Convenience fan-out for move-generated neighborhoods: builds one
    /// candidate per move — `base` with the move applied, seeding
    /// `carried` (the seeds accumulated since the last completed
    /// evaluation) plus the move's own seeds — and evaluates the whole
    /// batch. Returns the batch width.
    pub fn evaluate_candidates(
        &mut self,
        base: &SystemConfig,
        carried: &DeltaSeeds,
        moves: &[Move],
    ) -> usize {
        self.begin_candidates();
        for (index, mv) in moves.iter().enumerate() {
            if self.batch_requests.len() <= index {
                self.batch_requests.push(BatchRequest::default());
            }
            let slot = &mut self.batch_requests[index];
            slot.config.clone_from(base);
            slot.seeds.clear();
            slot.seeds.merge(carried);
            let _undo = mv.apply_undoable_seeded(&mut slot.config, &mut slot.seeds);
            self.batch_len = index + 1;
        }
        self.evaluate_candidates_queued();
        self.batch_len
    }

    /// Width of the current batch.
    pub fn batch_len(&self) -> usize {
        self.batch_len
    }

    /// The configuration of candidate `index` of the current batch.
    ///
    /// # Panics
    ///
    /// Panics if `index` is outside the batch.
    pub fn candidate_config(&self, index: usize) -> &SystemConfig {
        assert!(
            index < self.batch_len,
            "candidate {index} outside the batch"
        );
        &self.batch_requests[index].config
    }

    /// Consumes the pre-computed result of candidate `index`: counts one
    /// evaluation against the budget — exactly as the sequential
    /// [`evaluate_delta`](Self::evaluate_delta) call it replaces would —
    /// and returns the result.
    ///
    /// # Panics
    ///
    /// Panics if the batch was not evaluated or `index` is out of range.
    pub fn consume_candidate(&mut self, index: usize) -> Result<EvalSummary, AnalysisError> {
        assert!(
            index < self.batch_results.len(),
            "candidate {index} outside the evaluated batch"
        );
        self.evaluations += 1;
        self.batch_results[index].clone()
    }

    /// Adopts candidate `index`'s lane as the evaluator's primary state
    /// ([`Evaluator::adopt_lane`]): afterwards the evaluator holds exactly
    /// what a sequential `evaluate_delta` of that candidate would have left,
    /// so subsequent delta evaluations may seed against it.
    pub fn adopt_candidate(&mut self, index: usize) {
        self.evaluator.adopt_lane(&mut self.batch, index);
    }

    /// The current incumbent, if any was recorded yet.
    pub fn incumbent(&self) -> Option<(&EvalSummary, &SystemConfig)> {
        self.incumbent.as_ref().map(|(s, c)| (s, c))
    }

    /// Records `config` as the new incumbent: the driver keeps a clone,
    /// extends the δΓ trajectory and emits [`SearchEvent::NewIncumbent`].
    ///
    /// The strategy owns the *decision* (each heuristic compares costs its
    /// own way); the driver owns the bookkeeping.
    ///
    /// In a [`Synthesis::resume_from`] continuation, incumbents recorded
    /// inside the replayed prefix are verified against the checkpoint
    /// trajectory; any disagreement fails the run with
    /// [`SynthesisError::ResumeDivergence`].
    pub fn record_incumbent(&mut self, summary: EvalSummary, config: &SystemConfig) {
        if let Some(replay) = &mut self.replay {
            let point = TrajectoryPoint {
                evaluations: self.evaluations,
                summary,
            };
            if replay.matched < replay.expected.len() {
                if point == replay.expected[replay.matched] {
                    replay.matched += 1;
                } else {
                    replay.diverged = true;
                }
            } else if self.evaluations <= replay.until {
                // An incumbent inside the replayed prefix the checkpoint
                // never saw: the continuation is not re-running the same
                // search.
                replay.diverged = true;
            }
        }
        match &mut self.incumbent {
            Some((s, c)) => {
                *s = summary;
                c.clone_from(config);
            }
            None => self.incumbent = Some((summary, config.clone())),
        }
        self.trajectory.push(TrajectoryPoint {
            evaluations: self.evaluations,
            summary,
        });
        self.emit(SearchEvent::NewIncumbent {
            evaluations: self.evaluations,
            summary,
        });
    }

    /// Delivers `event` to every attached observer, in attachment order.
    ///
    /// In a [`Synthesis::resume_from`] continuation, events that the
    /// interrupted run already delivered (those inside the replayed prefix)
    /// are suppressed, so a streaming consumer sees each event exactly once
    /// across the interrupted run and its continuations. `Started` and
    /// `Finished` are always delivered — they frame *this* run.
    pub fn emit(&mut self, event: SearchEvent) {
        if let Some(replay) = &self.replay {
            let replayed = match event {
                SearchEvent::Started { .. } | SearchEvent::Finished { .. } => false,
                SearchEvent::Evaluated { evaluations, .. }
                | SearchEvent::Infeasible { evaluations }
                | SearchEvent::NewIncumbent { evaluations, .. } => evaluations <= replay.until,
                // A temperature epoch is emitted *before* its iteration's
                // evaluation, so the epoch stamped exactly at the cut
                // belongs to the first non-replayed iteration: suppress
                // strictly below the cut.
                SearchEvent::TemperatureEpoch { evaluations, .. } => evaluations < replay.until,
                // Count-less events: best effort — a `Phase` emitted exactly
                // at the checkpoint boundary may be delivered again.
                SearchEvent::Phase { .. } => self.evaluations < replay.until,
            };
            if replayed {
                return;
            }
        }
        for observer in self.observers.iter_mut() {
            observer.on_event(&event);
        }
    }
}

// ---------------------------------------------------------------------------
// Strategy & the driver
// ---------------------------------------------------------------------------

/// A synthesis heuristic pluggable into [`Synthesis`].
///
/// Implementations drive the search loop through the [`SearchCtx`] (see the
/// [module docs](self) for the full contract): evaluate through the
/// context, record incumbents, poll [`SearchCtx::exhausted`], emit events.
/// `Send` is required so strategies can fan out across [`Portfolio`] and
/// [`ExperimentRunner`] workers.
pub trait Strategy: Send {
    /// A stable, human-readable strategy name (`"SF"`, `"SAS"`, …).
    fn name(&self) -> &'static str;

    /// Runs the search to completion (or budget exhaustion).
    ///
    /// # Errors
    ///
    /// Returns [`SynthesisError::Analysis`] only for failures the strategy
    /// cannot search around (e.g. an unanalyzable start configuration);
    /// infeasible *candidates* are skipped, not propagated.
    fn run(&mut self, ctx: &mut SearchCtx<'_, '_, '_>) -> Result<(), SynthesisError>;
}

impl<S: Strategy + ?Sized> Strategy for &mut S {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn run(&mut self, ctx: &mut SearchCtx<'_, '_, '_>) -> Result<(), SynthesisError> {
        (**self).run(ctx)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn run(&mut self, ctx: &mut SearchCtx<'_, '_, '_>) -> Result<(), SynthesisError> {
        (**self).run(ctx)
    }
}

/// The unified result of one synthesis run.
#[derive(Clone, Debug)]
pub struct SynthesisReport {
    /// [`Strategy::name`] of the strategy that produced this report.
    pub strategy: &'static str,
    /// The incumbent: configuration, costs and the full analysis outcome.
    pub best: Evaluation,
    /// Schedulability analyses performed (full and delta alike, including
    /// infeasible attempts; excluding the driver's final materialization).
    pub evaluations: u64,
    /// The degree-of-schedulability trajectory: every incumbent in
    /// discovery order, stamped with its evaluation count.
    pub trajectory: Vec<TrajectoryPoint>,
    /// Whether the budget ran out (or the run was cancelled) before the
    /// strategy finished naturally.
    pub exhausted: bool,
    /// Which budget axis ended the run: `None` for a natural finish,
    /// otherwise the first axis a [`SearchCtx::exhausted`] poll observed
    /// (evaluations before wall clock before cancellation).
    pub exhausted_by: Option<BudgetAxis>,
}

impl SynthesisReport {
    /// The incumbent's cheap summary (the last trajectory point).
    pub fn summary(&self) -> EvalSummary {
        self.trajectory
            .last()
            .expect("a report always has at least one trajectory point")
            .summary
    }
}

/// Builder-style driver for one synthesis run; the front door of this
/// crate. See the [module docs](self) for the layer map and an example.
pub struct Synthesis<'s, 'a> {
    system: &'s System,
    analysis: AnalysisParams,
    strategy: Option<Box<dyn Strategy + 'a>>,
    budget: Budget,
    cancel: Option<CancelToken>,
    observers: Vec<Box<dyn Observer + 'a>>,
    resume: Option<(u64, Vec<TrajectoryPoint>)>,
}

impl<'s, 'a> std::fmt::Debug for Synthesis<'s, 'a> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Synthesis").finish_non_exhaustive()
    }
}

impl<'s, 'a> Synthesis<'s, 'a> {
    /// Starts configuring a run against `system` with default analysis
    /// parameters and an unlimited budget.
    pub fn builder(system: &'s System) -> Self {
        Synthesis {
            system,
            analysis: AnalysisParams::default(),
            strategy: None,
            budget: Budget::UNLIMITED,
            cancel: None,
            observers: Vec::new(),
            resume: None,
        }
    }

    /// Sets the analysis parameters.
    pub fn analysis(mut self, params: AnalysisParams) -> Self {
        self.analysis = params;
        self
    }

    /// Sets the strategy (required).
    pub fn strategy(mut self, strategy: impl Strategy + 'a) -> Self {
        self.strategy = Some(Box::new(strategy));
        self
    }

    /// Sets the evaluation budget.
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Attaches a cancellation token.
    pub fn cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Attaches an observer (repeatable; delivery in attachment order).
    /// Pass `&mut observer` to keep access to it after the run.
    pub fn observer(mut self, observer: impl Observer + 'a) -> Self {
        self.observers.push(Box::new(observer));
        self
    }

    /// Continues an interrupted run from `checkpoint` — the partial
    /// [`SynthesisReport`] of a run that was preempted, timed out or
    /// cancelled.
    ///
    /// **Contract.** The continuation must be configured with the *same*
    /// system, analysis parameters and strategy (same parameters, same
    /// seed) as the interrupted run, and a budget covering the total work
    /// (e.g. the original evaluation limit, or [`Budget::UNLIMITED`]; a
    /// wall-clock axis restarts from the continuation's `run()` entry).
    /// Because every strategy is a pure function of its inputs, the
    /// continuation deterministically replays the interrupted prefix —
    /// re-deriving the search state the checkpoint cannot carry (RNG
    /// stream, working configuration, evaluator caches) — and then runs on,
    /// producing a report **bit-identical** to a never-interrupted run.
    /// This holds for *any* cut point, including nondeterministic
    /// wall-clock preemptions.
    ///
    /// Two guarantees distinguish this from simply re-running:
    ///
    /// * **Exactly-once event streaming** — events the interrupted run
    ///   already delivered are suppressed during the replay, so an observer
    ///   attached to both runs sees each event once (`Started`/`Finished`
    ///   frame each run; a count-less `Phase` event exactly at the boundary
    ///   may repeat).
    /// * **Replay verification** — every incumbent re-recorded inside the
    ///   replayed prefix is checked against the checkpoint trajectory;
    ///   divergence (a mismatched strategy, seed, system or analysis
    ///   configuration) fails the run with
    ///   [`SynthesisError::ResumeDivergence`] instead of silently
    ///   producing a report from a different search.
    pub fn resume_from(mut self, checkpoint: &SynthesisReport) -> Self {
        self.resume = Some((checkpoint.evaluations, checkpoint.trajectory.clone()));
        self
    }

    /// Runs the strategy and returns the unified report.
    ///
    /// The incumbent is re-analyzed once at the end so the report carries
    /// its full [`AnalysisOutcome`](mcs_core::AnalysisOutcome) without the
    /// search loop ever materializing outcome maps.
    ///
    /// # Errors
    ///
    /// [`SynthesisError::Analysis`] if the strategy aborted on an
    /// unrecoverable analysis failure, [`SynthesisError::NoIncumbent`] if
    /// it finished (or was cancelled) before recording any incumbent.
    ///
    /// # Panics
    ///
    /// Panics if no strategy was set.
    pub fn run(mut self) -> Result<SynthesisReport, SynthesisError> {
        let mut strategy = self
            .strategy
            .take()
            .expect("Synthesis::run requires a strategy; call .strategy(...) first");
        let mut evaluator = Evaluator::new(self.system, self.analysis);
        let mut ctx = SearchCtx {
            evaluator: &mut evaluator,
            observers: &mut self.observers,
            budget: self.budget,
            deadline: self.budget.max_duration().map(|d| Instant::now() + d),
            cancel: self.cancel.clone(),
            evaluations: 0,
            exhausted_axis: Cell::new(None),
            incumbent: None,
            trajectory: Vec::new(),
            replay: self.resume.take().map(|(until, expected)| ReplayState {
                until,
                expected,
                matched: 0,
                diverged: false,
            }),
            batch: BatchScratch::new(),
            batch_requests: Vec::new(),
            batch_len: 0,
            batch_results: Vec::new(),
        };
        ctx.emit(SearchEvent::Started {
            strategy: strategy.name(),
        });
        let outcome = strategy.run(&mut ctx);
        let evaluations = ctx.evaluations;
        let exhausted = ctx.exhausted();
        let exhausted_by = ctx.exhausted_by();
        ctx.emit(SearchEvent::Finished {
            evaluations,
            exhausted,
        });
        let incumbent = ctx.incumbent.take();
        let trajectory = std::mem::take(&mut ctx.trajectory);
        let replay = ctx.replay.take();
        outcome?;
        if let Some(replay) = replay {
            // Once the continuation has run past the checkpoint, every
            // checkpoint incumbent must have been reproduced in order.
            if replay.diverged
                || (evaluations >= replay.until && replay.matched < replay.expected.len())
            {
                return Err(SynthesisError::ResumeDivergence {
                    matched: replay.matched,
                    expected: replay.expected.len(),
                });
            }
        }
        let (summary, config) = incumbent.ok_or(SynthesisError::NoIncumbent)?;
        // Materialize the incumbent's outcome with one extra analysis (the
        // search loop only ever compared summaries).
        let check = evaluator.evaluate(&config)?;
        debug_assert_eq!(
            check, summary,
            "re-analyzing the incumbent must reproduce its summary"
        );
        Ok(SynthesisReport {
            strategy: strategy.name(),
            best: materialize(&evaluator, config, check),
            evaluations,
            trajectory,
            exhausted,
            exhausted_by,
        })
    }
}

// ---------------------------------------------------------------------------
// Portfolio
// ---------------------------------------------------------------------------

/// How a [`Portfolio`] picks its winner among the collected reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Selection {
    /// The first entry (in insertion order) whose incumbent is
    /// schedulable; falls back to `BestCost(Objective::Schedule)` when none
    /// is.
    FirstSchedulable,
    /// The entry minimizing the objective; ties break toward the lowest
    /// entry index.
    BestCost(Objective),
}

/// The result of a [`Portfolio`] run.
#[derive(Debug)]
pub struct PortfolioReport {
    /// Index of the winning entry, `None` when every entry failed.
    pub winner: Option<usize>,
    /// Every entry's labelled report, in insertion order.
    pub reports: Vec<(String, Result<SynthesisReport, SynthesisError>)>,
}

impl PortfolioReport {
    /// The winning entry's label and report.
    pub fn winner_report(&self) -> Option<(&str, &SynthesisReport)> {
        let index = self.winner?;
        let (label, report) = &self.reports[index];
        Some((label.as_str(), report.as_ref().expect("winner is Ok")))
    }
}

/// Runs N strategies (or N seeds) against one system in parallel and picks
/// a winner deterministically. See the [module docs](self).
pub struct Portfolio<'s, 'a> {
    system: &'s System,
    analysis: AnalysisParams,
    entries: Vec<(String, Box<dyn Strategy + 'a>)>,
    budget: Budget,
    selection: Selection,
    race: bool,
}

impl<'s, 'a> std::fmt::Debug for Portfolio<'s, 'a> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Portfolio").finish_non_exhaustive()
    }
}

impl<'s, 'a> Portfolio<'s, 'a> {
    /// Starts a portfolio against `system` with default analysis
    /// parameters, unlimited per-entry budget and
    /// [`Selection::FirstSchedulable`].
    pub fn builder(system: &'s System) -> Self {
        Portfolio {
            system,
            analysis: AnalysisParams::default(),
            entries: Vec::new(),
            budget: Budget::UNLIMITED,
            selection: Selection::FirstSchedulable,
            race: false,
        }
    }

    /// Sets the analysis parameters shared by every entry.
    pub fn analysis(mut self, params: AnalysisParams) -> Self {
        self.analysis = params;
        self
    }

    /// Adds a labelled strategy entry.
    pub fn add(mut self, label: impl Into<String>, strategy: impl Strategy + 'a) -> Self {
        self.entries.push((label.into(), Box::new(strategy)));
        self
    }

    /// Sets the per-entry evaluation budget.
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Sets the winner-selection rule.
    pub fn selection(mut self, selection: Selection) -> Self {
        self.selection = selection;
        self
    }

    /// Enables racing: as soon as any entry records a schedulable
    /// incumbent, every other entry is cooperatively cancelled. The winner
    /// under [`Selection::FirstSchedulable`] may then depend on worker
    /// timing — racing trades determinism for wall-clock time; leave it off
    /// (the default) for reproducible sweeps.
    pub fn race(mut self, race: bool) -> Self {
        self.race = race;
        self
    }

    /// Number of entries added so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no entries were added.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Runs every entry (in parallel across rayon workers) and selects the
    /// winner. Reports come back in insertion order.
    pub fn run(self) -> PortfolioReport {
        let Portfolio {
            system,
            analysis,
            entries,
            budget,
            selection,
            race,
        } = self;
        let token = CancelToken::new();
        let reports: Vec<(String, Result<SynthesisReport, SynthesisError>)> = entries
            .into_par_iter()
            .map(|(label, strategy)| {
                let mut builder = Synthesis::builder(system)
                    .analysis(analysis)
                    .budget(budget)
                    .cancel(token.clone());
                if race {
                    builder = builder.observer(CancelOnSchedulable(token.clone()));
                }
                let report = builder.strategy(strategy).run();
                if race && report.as_ref().is_ok_and(|r| r.best.is_schedulable()) {
                    token.cancel();
                }
                (label, report)
            })
            .collect();
        let winner = select_winner(&reports, selection);
        PortfolioReport { winner, reports }
    }
}

/// Race observer: cancels the shared token on the first schedulable
/// incumbent.
struct CancelOnSchedulable(CancelToken);

impl Observer for CancelOnSchedulable {
    fn on_event(&mut self, event: &SearchEvent) {
        if let SearchEvent::NewIncumbent { summary, .. } = event {
            if summary.is_schedulable() {
                self.0.cancel();
            }
        }
    }
}

fn select_winner(
    reports: &[(String, Result<SynthesisReport, SynthesisError>)],
    selection: Selection,
) -> Option<usize> {
    let ok = |i: &usize| reports[*i].1.as_ref().ok();
    let indices: Vec<usize> = (0..reports.len()).filter(|i| ok(i).is_some()).collect();
    if indices.is_empty() {
        return None;
    }
    match selection {
        Selection::FirstSchedulable => indices
            .iter()
            .copied()
            .find(|i| ok(i).is_some_and(|r| r.best.is_schedulable()))
            .or_else(|| select_winner(reports, Selection::BestCost(Objective::Schedule))),
        Selection::BestCost(objective) => indices.into_iter().min_by_key(|i| {
            let report = reports[*i].1.as_ref().expect("filtered to Ok");
            (objective.evaluation_cost(&report.best), *i)
        }),
    }
}

// ---------------------------------------------------------------------------
// Batch experiment serving
// ---------------------------------------------------------------------------

/// One (instance × strategy) unit of batch work for [`ExperimentRunner`].
pub struct ExperimentJob {
    /// Instance label, e.g. `"nodes=4,seed=17"`.
    pub instance: String,
    /// Strategy label, e.g. `"OS"`. Defaults to [`Strategy::name`] but may
    /// carry run-specific detail (`"SAS/iters=2000"`).
    pub strategy_label: String,
    system: Arc<System>,
    analysis: AnalysisParams,
    strategy: Box<dyn Strategy>,
    budget: Budget,
    deadline: Option<Duration>,
}

impl std::fmt::Debug for ExperimentJob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExperimentJob").finish_non_exhaustive()
    }
}

impl ExperimentJob {
    /// Creates a job with the strategy's own name as its label.
    pub fn new(
        instance: impl Into<String>,
        system: Arc<System>,
        analysis: AnalysisParams,
        strategy: impl Strategy + 'static,
    ) -> Self {
        ExperimentJob {
            instance: instance.into(),
            strategy_label: strategy.name().to_string(),
            system,
            analysis,
            strategy: Box::new(strategy),
            budget: Budget::UNLIMITED,
            deadline: None,
        }
    }

    /// Overrides the strategy label.
    pub fn labelled(mut self, label: impl Into<String>) -> Self {
        self.strategy_label = label.into();
        self
    }

    /// Sets the job's evaluation budget.
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Caps the job's wall-clock time: a run past `deadline` is wound down
    /// cooperatively and its record reports the partial result (with
    /// [`BudgetAxis::WallClock`] as the exhausted axis) instead of holding
    /// the whole batch hostage.
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    fn into_spec(self) -> crate::serve::JobSpec {
        let mut spec =
            crate::serve::JobSpec::new(self.instance, self.system, self.analysis, self.strategy)
                .labelled(self.strategy_label)
                .budget(self.budget);
        if let Some(deadline) = self.deadline {
            spec = spec.deadline(deadline);
        }
        spec
    }
}

/// The outcome of one [`ExperimentJob`], with a stable machine-readable
/// rendering.
#[derive(Debug)]
pub struct ExperimentRecord {
    /// The job's instance label.
    pub instance: String,
    /// The job's strategy label.
    pub strategy: String,
    /// Wall-clock time of the run in microseconds.
    pub elapsed_micros: u64,
    /// The synthesis report (or why the run failed).
    pub report: Result<SynthesisReport, SynthesisError>,
}

impl ExperimentRecord {
    /// The report of a job that must not fail.
    ///
    /// # Panics
    ///
    /// Panics with `context` if the job failed.
    pub fn expect(&self, context: &str) -> &SynthesisReport {
        match &self.report {
            Ok(report) => report,
            Err(e) => panic!("{context}: {e}"),
        }
    }

    /// Renders the record as one stable JSON line (see
    /// [`mcs_core::json_line`]): `instance`, `strategy`, `ok`,
    /// `schedulable`, `schedule_cost`, `total_buffers`, `evaluations`,
    /// `exhausted` (plus `exhausted_by` for truncated runs),
    /// `elapsed_micros`. Failed runs carry `ok: false` and omit the result
    /// fields.
    pub fn json_line(&self) -> String {
        use mcs_core::JsonField as F;
        match &self.report {
            Ok(r) => {
                let mut fields = vec![
                    ("instance", F::Str(&self.instance)),
                    ("strategy", F::Str(&self.strategy)),
                    ("ok", F::Bool(true)),
                    ("schedulable", F::Bool(r.best.is_schedulable())),
                    ("schedule_cost", F::Int(r.best.schedule_cost())),
                    ("total_buffers", F::UInt(r.best.total_buffers)),
                    ("evaluations", F::UInt(r.evaluations)),
                    ("exhausted", F::Bool(r.exhausted)),
                ];
                if let Some(axis) = r.exhausted_by {
                    fields.push(("exhausted_by", F::Str(axis.as_str())));
                }
                fields.push(("elapsed_micros", F::UInt(self.elapsed_micros)));
                mcs_core::json_line(&fields)
            }
            Err(e) => mcs_core::json_line(&[
                ("instance", F::Str(&self.instance)),
                ("strategy", F::Str(&self.strategy)),
                ("ok", F::Bool(false)),
                ("error", F::Str(&e.to_string())),
                ("elapsed_micros", F::UInt(self.elapsed_micros)),
            ]),
        }
    }
}

/// Batch experiment serving: a queue of [`ExperimentJob`]s fanned out
/// across a [`crate::serve::SynthesisService`] worker pool, records
/// collected in submission order.
///
/// This is the layer the `fig9` sweep binaries sit on. Since it runs on
/// the service, each job is **panic-isolated**: a job whose strategy
/// panics produces a structured failed record
/// ([`SynthesisError::Panicked`]) while every other job completes — one
/// poisoned instance can no longer abort a whole sweep. Jobs may also
/// carry wall-clock deadlines ([`ExperimentJob::deadline`]); a timed-out
/// job reports its partial result with
/// [`BudgetAxis::WallClock`] in [`SynthesisReport::exhausted_by`].
#[derive(Debug, Default)]
pub struct ExperimentRunner {
    jobs: Vec<ExperimentJob>,
}

impl ExperimentRunner {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueues one job.
    pub fn push(&mut self, job: ExperimentJob) -> &mut Self {
        self.jobs.push(job);
        self
    }

    /// Jobs enqueued so far.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// `true` when the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Runs every job (parallel, dynamically load-balanced across a
    /// [`crate::serve::SynthesisService`] worker pool; `RAYON_NUM_THREADS`
    /// caps the workers) and returns the records in submission order —
    /// parallel output is byte-identical to a sequential run.
    pub fn run(self) -> Vec<ExperimentRecord> {
        use crate::serve::{ServiceConfig, SynthesisService};

        if self.jobs.is_empty() {
            return Vec::new();
        }
        let service = SynthesisService::start(ServiceConfig {
            workers: ServiceConfig::default().workers.min(self.jobs.len()),
            // The whole batch is known up front: size the queue to it so
            // submission never blocks.
            queue_capacity: self.jobs.len(),
            ..ServiceConfig::default()
        });
        for job in self.jobs {
            service
                .try_submit(job.into_spec())
                .expect("queue sized to the batch");
        }
        let mut records = service.shutdown();
        records.sort_by_key(|record| record.id);
        records
            .into_iter()
            .map(|record| ExperimentRecord {
                instance: record.name,
                strategy: record.strategy,
                elapsed_micros: record.elapsed_micros,
                report: record.outcome.into_report(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Os, OsParams, Sa, SaParams, Sf};
    use mcs_gen::{figure4, generate, GeneratorParams};
    use mcs_model::Time;

    fn quick_sa(seed: u64) -> Sa<'static> {
        Sa::schedule(SaParams {
            iterations: 40,
            seed,
            ..SaParams::default()
        })
    }

    #[test]
    fn budget_truncates_the_run_and_is_reported() {
        let fig = figure4(Time::from_millis(240));
        let full = Synthesis::builder(&fig.system)
            .strategy(quick_sa(3))
            .run()
            .expect("analyzable");
        assert!(!full.exhausted);
        let capped = Synthesis::builder(&fig.system)
            .strategy(quick_sa(3))
            .budget(Budget::evals(5))
            .run()
            .expect("analyzable");
        assert!(capped.exhausted);
        assert!(capped.evaluations <= 6, "cooperative overshoot is small");
        assert!(capped.evaluations < full.evaluations);
    }

    #[test]
    fn events_stream_deterministically_and_trajectory_matches() {
        let fig = figure4(Time::from_millis(240));
        let run = |_: u32| {
            let mut counter = EventCounter::default();
            let report = Synthesis::builder(&fig.system)
                .strategy(quick_sa(9))
                .observer(&mut counter)
                .run()
                .expect("analyzable");
            (counter, report)
        };
        let (c1, r1) = run(0);
        let (c2, r2) = run(1);
        assert_eq!(c1, c2, "seeded runs reproduce the event stream");
        assert_eq!(r1.trajectory, r2.trajectory);
        assert_eq!(c1.incumbents as usize, r1.trajectory.len());
        assert_eq!(r1.summary(), r2.summary());
        assert!(c1.epochs > 0, "SA narrates temperature epochs");
    }

    #[test]
    fn cancellation_stops_a_run_early() {
        let fig = figure4(Time::from_millis(240));
        let token = CancelToken::new();
        token.cancel();
        let report = Synthesis::builder(&fig.system)
            .strategy(quick_sa(1))
            .cancel(token)
            .run()
            .expect("the start configuration still lands an incumbent");
        // The start evaluation records an incumbent; the loop then winds
        // down immediately.
        assert!(report.exhausted);
        assert!(report.evaluations <= 2);
    }

    #[test]
    fn portfolio_winner_is_deterministic_across_runs() {
        let system = generate(&GeneratorParams::paper_sized(2, 23));
        let run = || {
            Portfolio::builder(&system)
                .selection(Selection::BestCost(Objective::Schedule))
                .add("sf", Sf)
                .add("sas-0", quick_sa(0))
                .add("sas-1", quick_sa(1))
                .add("os", Os::new(OsParams::default()))
                .run()
        };
        let a = run();
        let b = run();
        assert_eq!(a.reports.len(), 4);
        assert_eq!(a.winner, b.winner);
        let (label_a, report_a) = a.winner_report().expect("one entry succeeds");
        let (label_b, report_b) = b.winner_report().expect("one entry succeeds");
        assert_eq!(label_a, label_b);
        assert_eq!(report_a.summary(), report_b.summary());
    }

    #[test]
    fn portfolio_first_schedulable_prefers_insertion_order() {
        let fig = figure4(Time::from_millis(240));
        let report = Portfolio::builder(&fig.system)
            .add("os", Os::new(OsParams::default()))
            .add("sas", quick_sa(2))
            .run();
        // Both find schedulable solutions on figure 4 at 240 ms; the first
        // entry wins.
        assert_eq!(report.winner, Some(0));
    }

    #[test]
    fn experiment_runner_preserves_submission_order() {
        let fig = figure4(Time::from_millis(240));
        let system = Arc::new(fig.system);
        let mut runner = ExperimentRunner::new();
        for seed in 0..4 {
            runner.push(
                ExperimentJob::new(
                    format!("fig4#{seed}"),
                    Arc::clone(&system),
                    AnalysisParams::default(),
                    quick_sa(seed),
                )
                .labelled(format!("SAS#{seed}")),
            );
        }
        let records = runner.run();
        assert_eq!(records.len(), 4);
        for (seed, record) in records.iter().enumerate() {
            assert_eq!(record.instance, format!("fig4#{seed}"));
            assert_eq!(record.strategy, format!("SAS#{seed}"));
            let line = record.json_line();
            assert!(line.starts_with('{') && line.ends_with('}'));
            assert!(line.contains("\"ok\": true"));
            assert!(!line.contains('\n'));
        }
    }

    #[test]
    fn missing_strategy_panics_with_a_clear_message() {
        let fig = figure4(Time::from_millis(240));
        let result = std::panic::catch_unwind(|| {
            let _ = Synthesis::builder(&fig.system).run();
        });
        assert!(result.is_err());
    }
}
