//! Design transformations ("moves") over a system configuration ψ
//! (paper §5.1):
//!
//! * swapping two TDMA slots in the round;
//! * increasing/decreasing a slot's size;
//! * swapping the priorities of two ET processes or of two messages;
//! * moving a TT process or TTC message inside its [ASAP, ALAP] window
//!   (realized as offset pins honoured by the list scheduler).

use mcs_core::DeltaSeeds;
use mcs_model::{MessageId, MessageRoute, NodeId, ProcessId, SlotId, System, SystemConfig, Time};

use crate::cost::Evaluation;

/// One design transformation applicable to a [`SystemConfig`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Move {
    /// Swap the positions of two TDMA slots.
    SwapSlots(SlotId, SlotId),
    /// Grow or shrink a slot's byte capacity.
    ResizeSlot(SlotId, i32),
    /// Swap the priorities of two processes on the same ET CPU.
    SwapProcessPriorities(ProcessId, ProcessId),
    /// Swap the priorities of two CAN messages.
    SwapMessagePriorities(MessageId, MessageId),
    /// Pin a TT process's earliest start (an ALAP-direction φ move).
    PinProcess(ProcessId, Time),
    /// Remove a process pin (back toward ASAP).
    UnpinProcess(ProcessId),
    /// Pin a TTC message's earliest transmission.
    PinMessage(MessageId, Time),
    /// Remove a message pin.
    UnpinMessage(MessageId),
}

impl Move {
    /// Applies the move to a configuration.
    ///
    /// Moves can produce *invalid* configurations (e.g. a slot shrunk below
    /// its largest message); searches rely on evaluation rejecting those.
    pub fn apply(&self, config: &mut SystemConfig) {
        match *self {
            Move::SwapSlots(a, b) => config.tdma.swap_slots(a, b),
            Move::ResizeSlot(slot, delta) => {
                let cap = &mut config.tdma.slots_mut()[slot.index()].capacity_bytes;
                *cap = cap.saturating_add_signed(delta).max(1);
            }
            Move::SwapProcessPriorities(a, b) => config.priorities.swap_processes(a, b),
            Move::SwapMessagePriorities(a, b) => config.priorities.swap_messages(a, b),
            Move::PinProcess(p, t) => {
                config.offsets.pin_process(p, t);
            }
            Move::UnpinProcess(p) => {
                config.offsets.unpin_process(p);
            }
            Move::PinMessage(m, t) => {
                config.offsets.pin_message(m, t);
            }
            Move::UnpinMessage(m) => {
                config.offsets.unpin_message(m);
            }
        }
    }

    /// Applies the move and returns the exact inverse, so search loops can
    /// explore a neighbor and roll the configuration back **in place**
    /// instead of cloning a [`SystemConfig`] per candidate.
    ///
    /// The apply/undo contract: for any configuration `c`,
    /// `let u = m.apply_undoable(&mut c); u.revert(&mut c);` restores `c`
    /// bit-for-bit — including the cases plain re-application would get
    /// wrong (a resize clamped at 1 byte, a pin overwriting an existing
    /// pin).
    pub fn apply_undoable(&self, config: &mut SystemConfig) -> MoveUndo {
        let undo = match *self {
            Move::SwapSlots(a, b) => MoveUndo::SwapSlots(a, b),
            Move::ResizeSlot(slot, _) => MoveUndo::RestoreSlotCapacity(
                slot,
                config.tdma.slots()[slot.index()].capacity_bytes,
            ),
            Move::SwapProcessPriorities(a, b) => MoveUndo::SwapProcessPriorities(a, b),
            Move::SwapMessagePriorities(a, b) => MoveUndo::SwapMessagePriorities(a, b),
            Move::PinProcess(p, _) | Move::UnpinProcess(p) => {
                MoveUndo::RestoreProcessPin(p, config.offsets.process(p))
            }
            Move::PinMessage(m, _) | Move::UnpinMessage(m) => {
                MoveUndo::RestoreMessagePin(m, config.offsets.message(m))
            }
        };
        self.apply(config);
        undo
    }

    /// [`apply_undoable`](Move::apply_undoable) that additionally reports
    /// the delta-RTA seed entities the move touches into `seeds`, so the
    /// search loop can drive [`mcs_core::Evaluator::evaluate_delta`].
    ///
    /// Seeds accumulate: the caller clears them after each successful
    /// evaluation and records the undo's seeds again when reverting (see
    /// [`MoveUndo::record_seeds`]), keeping the set an over-approximation of
    /// "what changed since the evaluator's last completed analysis".
    pub fn apply_undoable_seeded(
        &self,
        config: &mut SystemConfig,
        seeds: &mut DeltaSeeds,
    ) -> MoveUndo {
        self.record_seeds(seeds);
        self.apply_undoable(config)
    }

    /// Records the delta-RTA seed entities this move touches: the swapped
    /// priority holders for the two priority families, a structural marker
    /// for TDMA-round changes (slot swaps/resizes alter the bus parameters
    /// every kernel reads, so they always take the full evaluation path).
    /// Pin moves record nothing — they act purely through the static
    /// scheduler's release bounds, which the delta evaluator's trajectory
    /// replay re-derives and re-checks itself.
    pub fn record_seeds(&self, seeds: &mut DeltaSeeds) {
        match *self {
            Move::SwapSlots(_, _) | Move::ResizeSlot(_, _) => seeds.mark_structural(),
            Move::PinProcess(_, _)
            | Move::UnpinProcess(_)
            | Move::PinMessage(_, _)
            | Move::UnpinMessage(_) => {}
            Move::SwapProcessPriorities(a, b) => {
                seeds.push_process(a);
                seeds.push_process(b);
            }
            Move::SwapMessagePriorities(a, b) => {
                seeds.push_message(a);
                seeds.push_message(b);
            }
        }
    }
}

/// The inverse of one applied [`Move`], captured by
/// [`Move::apply_undoable`]. Swaps are their own inverses; resizes and pin
/// changes restore the recorded prior state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MoveUndo {
    /// Swap the two slots back.
    SwapSlots(SlotId, SlotId),
    /// Restore a slot's previous byte capacity.
    RestoreSlotCapacity(SlotId, u32),
    /// Swap the two process priorities back.
    SwapProcessPriorities(ProcessId, ProcessId),
    /// Swap the two message priorities back.
    SwapMessagePriorities(MessageId, MessageId),
    /// Restore a process's previous pin (`None` removes the pin).
    RestoreProcessPin(ProcessId, Option<Time>),
    /// Restore a message's previous pin (`None` removes the pin).
    RestoreMessagePin(MessageId, Option<Time>),
}

impl MoveUndo {
    /// Rolls the configuration back to its state before the paired
    /// [`Move::apply_undoable`] call.
    pub fn revert(self, config: &mut SystemConfig) {
        match self {
            MoveUndo::SwapSlots(a, b) => config.tdma.swap_slots(a, b),
            MoveUndo::RestoreSlotCapacity(slot, capacity) => {
                config.tdma.slots_mut()[slot.index()].capacity_bytes = capacity;
            }
            MoveUndo::SwapProcessPriorities(a, b) => config.priorities.swap_processes(a, b),
            MoveUndo::SwapMessagePriorities(a, b) => config.priorities.swap_messages(a, b),
            MoveUndo::RestoreProcessPin(p, Some(t)) => {
                config.offsets.pin_process(p, t);
            }
            MoveUndo::RestoreProcessPin(p, None) => {
                config.offsets.unpin_process(p);
            }
            MoveUndo::RestoreMessagePin(m, Some(t)) => {
                config.offsets.pin_message(m, t);
            }
            MoveUndo::RestoreMessagePin(m, None) => {
                config.offsets.unpin_message(m);
            }
        }
    }

    /// Records the delta-RTA seed entities this undo touches (the same
    /// entities as the move it inverts). Call before
    /// [`revert`](MoveUndo::revert)ing away from an evaluated configuration,
    /// so the accumulated seeds keep covering the distance to the
    /// evaluator's last completed analysis.
    pub fn record_seeds(&self, seeds: &mut DeltaSeeds) {
        match *self {
            MoveUndo::SwapSlots(_, _) | MoveUndo::RestoreSlotCapacity(_, _) => {
                seeds.mark_structural()
            }
            MoveUndo::RestoreProcessPin(_, _) | MoveUndo::RestoreMessagePin(_, _) => {}
            MoveUndo::SwapProcessPriorities(a, b) => {
                seeds.push_process(a);
                seeds.push_process(b);
            }
            MoveUndo::SwapMessagePriorities(a, b) => {
                seeds.push_message(a);
                seeds.push_message(b);
            }
        }
    }
}

/// Generates the neighborhood of the evaluated configuration: every move of
/// the paper's four families, instantiated against the current analysis
/// outcome (offsets, slacks, priority orders).
pub fn neighborhood(system: &System, eval: &Evaluation) -> Vec<Move> {
    let mut moves = Vec::new();
    neighborhood_into(system, eval, &mut moves);
    moves
}

/// [`neighborhood`], writing into a caller-owned buffer: `moves` is cleared
/// and refilled, so scan loops that regenerate the neighborhood every
/// iteration reuse one allocation instead of building a fresh `Vec` per
/// step.
pub fn neighborhood_into(system: &System, eval: &Evaluation, moves: &mut Vec<Move>) {
    moves.clear();
    let config = &eval.config;
    let app = &system.application;
    let arch = &system.architecture;

    // Slot swaps: all ordered pairs.
    let n_slots = config.tdma.slot_count();
    for i in 0..n_slots {
        for j in (i + 1)..n_slots {
            moves.push(Move::SwapSlots(
                SlotId::new(i as u32),
                SlotId::new(j as u32),
            ));
        }
    }
    // Slot resizes: quanta of half/whole of the typical message.
    for i in 0..n_slots {
        for delta in [-8, -4, 4, 8] {
            moves.push(Move::ResizeSlot(SlotId::new(i as u32), delta));
        }
    }

    // Adjacent priority swaps per ET CPU.
    let mut nodes: Vec<NodeId> = arch
        .nodes()
        .iter()
        .filter(|n| arch.is_et_cpu(n.id()))
        .map(|n| n.id())
        .collect();
    nodes.sort();
    for node in nodes {
        let mut procs: Vec<ProcessId> = app
            .processes_on(node)
            .map(|p| p.id())
            .filter(|&p| config.priorities.process(p).is_some())
            .collect();
        procs.sort_by_key(|&p| config.priorities.process(p).expect("filtered"));
        for pair in procs.windows(2) {
            moves.push(Move::SwapProcessPriorities(pair[0], pair[1]));
        }
    }
    // Adjacent message priority swaps on the bus.
    let mut msgs: Vec<MessageId> = app
        .messages()
        .iter()
        .map(|m| m.id())
        .filter(|&m| config.priorities.message(m).is_some())
        .collect();
    msgs.sort_by_key(|&m| config.priorities.message(m).expect("filtered"));
    for pair in msgs.windows(2) {
        moves.push(Move::SwapMessagePriorities(pair[0], pair[1]));
    }

    // φ moves: shift gateway-feeding TT senders later within the graph's
    // slack (phase-separating the inter-cluster traffic), or release pins.
    let round = config.tdma.round_duration(&arch.ttp_params());
    for m in app.messages() {
        if system.route(m.id()) != MessageRoute::TtcToEtc {
            continue;
        }
        let sender = m.source();
        let graph = app.process(sender).graph();
        let slack = Time::from_ticks(
            (-eval.degree.slack.min(0))
                .unsigned_abs()
                .try_into()
                .unwrap_or(u64::MAX),
        );
        let current = eval.outcome.process_timing(sender).offset;
        if config.offsets.process(sender).is_some() {
            moves.push(Move::UnpinProcess(sender));
        }
        if eval.is_schedulable() && round <= slack {
            moves.push(Move::PinProcess(sender, current + round));
        }
        let _ = graph;
    }
    for m in app.messages() {
        if system.route(m.id()) != MessageRoute::TtcToTtc {
            continue;
        }
        if config.offsets.message(m.id()).is_some() {
            moves.push(Move::UnpinMessage(m.id()));
        } else if eval.is_schedulable() {
            let arrival = eval.outcome.message_timing[&m.id()].arrival;
            moves.push(Move::PinMessage(m.id(), arrival + round));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::evaluate;
    use mcs_core::AnalysisParams;
    use mcs_gen::figure4;

    #[test]
    fn moves_apply_and_invert() {
        let fig = figure4(Time::from_millis(240));
        let mut config = fig.config_a.clone();
        let original = config.clone();

        Move::SwapSlots(SlotId::new(0), SlotId::new(1)).apply(&mut config);
        assert_ne!(config.tdma, original.tdma);
        Move::SwapSlots(SlotId::new(0), SlotId::new(1)).apply(&mut config);
        assert_eq!(config.tdma, original.tdma);

        Move::ResizeSlot(SlotId::new(0), 8).apply(&mut config);
        assert_eq!(config.tdma.slots()[0].capacity_bytes, 16);
        Move::ResizeSlot(SlotId::new(0), -8).apply(&mut config);
        assert_eq!(config.tdma.slots()[0].capacity_bytes, 8);
        // Shrinking below one byte clamps.
        Move::ResizeSlot(SlotId::new(0), -100).apply(&mut config);
        assert_eq!(config.tdma.slots()[0].capacity_bytes, 1);
    }

    #[test]
    fn pins_round_trip() {
        let fig = figure4(Time::from_millis(240));
        let mut config = fig.config_a.clone();
        let p = mcs_gen::figure4_ids::P1;
        Move::PinProcess(p, Time::from_millis(40)).apply(&mut config);
        assert_eq!(config.offsets.process(p), Some(Time::from_millis(40)));
        Move::UnpinProcess(p).apply(&mut config);
        assert_eq!(config.offsets.process(p), None);
    }

    #[test]
    fn neighborhood_contains_all_four_move_families() {
        let fig = figure4(Time::from_millis(240));
        let eval = evaluate(
            &fig.system,
            fig.config_b.clone(),
            &AnalysisParams::default(),
        )
        .expect("valid");
        let moves = neighborhood(&fig.system, &eval);
        assert!(moves.iter().any(|m| matches!(m, Move::SwapSlots(_, _))));
        assert!(moves.iter().any(|m| matches!(m, Move::ResizeSlot(_, _))));
        assert!(moves
            .iter()
            .any(|m| matches!(m, Move::SwapProcessPriorities(_, _))));
        assert!(moves
            .iter()
            .any(|m| matches!(m, Move::SwapMessagePriorities(_, _))));
    }
}
