//! Configuration evaluation: one `MultiClusterScheduling` run plus the two
//! cost functions of the paper — the degree of schedulability δΓ and the
//! total buffer need `s_total`.
//!
//! The search loops evaluate through a reused [`Evaluator`], reading only
//! the cheap [`EvalSummary`]; a full [`Evaluation`] (with the outcome maps)
//! is materialized via [`materialize`] for accepted/final configurations.

use mcs_core::{
    AnalysisError, AnalysisOutcome, AnalysisParams, EvalSummary, Evaluator, SchedulabilityDegree,
};
use mcs_model::{System, SystemConfig};

/// The evaluation of one system configuration ψ.
#[derive(Clone, Debug)]
pub struct Evaluation {
    /// The evaluated configuration.
    pub config: SystemConfig,
    /// δΓ of the configuration.
    pub degree: SchedulabilityDegree,
    /// `s_total` in bytes.
    pub total_buffers: u64,
    /// The full analysis outcome (schedule tables, timings, queue bounds).
    pub outcome: AnalysisOutcome,
}

impl Evaluation {
    /// `true` iff the configuration is schedulable.
    pub fn is_schedulable(&self) -> bool {
        self.degree.is_schedulable()
    }

    /// The δΓ scalar minimized by schedule optimization.
    pub fn schedule_cost(&self) -> i128 {
        self.degree.cost()
    }

    /// The cost minimized by resource optimization: `s_total` for
    /// schedulable configurations; unschedulable ones are ranked after every
    /// schedulable one, ordered by δΓ.
    pub fn resource_cost(&self) -> i128 {
        if self.is_schedulable() {
            i128::from(self.total_buffers)
        } else {
            i128::MAX / 4 + self.schedule_cost().min(i128::MAX / 8)
        }
    }
}

/// The resource-optimization cost of a summary (same ordering as
/// [`Evaluation::resource_cost`]): `s_total` for schedulable
/// configurations, unschedulable ones ranked after every schedulable one by
/// δΓ.
pub fn resource_cost(summary: &EvalSummary) -> i128 {
    if summary.is_schedulable() {
        i128::from(summary.total_buffers)
    } else {
        i128::MAX / 4 + summary.schedule_cost().min(i128::MAX / 8)
    }
}

/// Packages the evaluator's **last** run as a full [`Evaluation`].
///
/// `summary` must be the result of that run (i.e. of evaluating `config`);
/// the outcome maps are materialized from the evaluator's scratch state.
pub(crate) fn materialize(
    evaluator: &Evaluator<'_>,
    config: SystemConfig,
    summary: EvalSummary,
) -> Evaluation {
    Evaluation {
        config,
        degree: summary.degree,
        total_buffers: summary.total_buffers,
        outcome: evaluator.outcome(),
    }
}

/// Analyzes `config` and packages the costs (one-shot: builds a fresh
/// [`Evaluator`]; search loops should construct and reuse their own).
///
/// # Errors
///
/// Propagates [`AnalysisError`] for structurally invalid configurations
/// (e.g. a slot smaller than a message a search move produced); searches
/// treat such neighbors as infeasible and skip them.
pub fn evaluate(
    system: &System,
    config: SystemConfig,
    params: &AnalysisParams,
) -> Result<Evaluation, AnalysisError> {
    let mut evaluator = Evaluator::new(system, *params);
    let summary = evaluator.evaluate(&config)?;
    Ok(materialize(&evaluator, config, summary))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_gen::figure4;
    use mcs_model::Time;

    #[test]
    fn evaluation_reports_costs_for_figure4() {
        let fig = figure4(Time::from_millis(200));
        let params = AnalysisParams::default();
        let a = evaluate(&fig.system, fig.config_a.clone(), &params).expect("valid");
        let b = evaluate(&fig.system, fig.config_b.clone(), &params).expect("valid");
        assert!(!a.is_schedulable());
        assert!(a.schedule_cost() > b.schedule_cost());
        assert!(a.total_buffers > 0);
        // Unschedulable configs always rank after schedulable ones on the
        // resource axis.
        let fig240 = figure4(Time::from_millis(240));
        let b240 = evaluate(&fig240.system, fig240.config_b.clone(), &params).expect("valid");
        assert!(b240.is_schedulable());
        assert!(b240.resource_cost() < a.resource_cost());
    }
}
