//! Configuration evaluation: one `MultiClusterScheduling` run plus the two
//! cost functions of the paper — the degree of schedulability δΓ and the
//! total buffer need `s_total`.

use mcs_core::{
    degree_of_schedulability, multi_cluster_scheduling, AnalysisError, AnalysisOutcome,
    AnalysisParams, SchedulabilityDegree,
};
use mcs_model::{System, SystemConfig};

/// The evaluation of one system configuration ψ.
#[derive(Clone, Debug)]
pub struct Evaluation {
    /// The evaluated configuration.
    pub config: SystemConfig,
    /// δΓ of the configuration.
    pub degree: SchedulabilityDegree,
    /// `s_total` in bytes.
    pub total_buffers: u64,
    /// The full analysis outcome (schedule tables, timings, queue bounds).
    pub outcome: AnalysisOutcome,
}

impl Evaluation {
    /// `true` iff the configuration is schedulable.
    pub fn is_schedulable(&self) -> bool {
        self.degree.is_schedulable()
    }

    /// The δΓ scalar minimized by schedule optimization.
    pub fn schedule_cost(&self) -> i128 {
        self.degree.cost()
    }

    /// The cost minimized by resource optimization: `s_total` for
    /// schedulable configurations; unschedulable ones are ranked after every
    /// schedulable one, ordered by δΓ.
    pub fn resource_cost(&self) -> i128 {
        if self.is_schedulable() {
            i128::from(self.total_buffers)
        } else {
            i128::MAX / 4 + self.schedule_cost().min(i128::MAX / 8)
        }
    }
}

/// Analyzes `config` and packages the costs.
///
/// # Errors
///
/// Propagates [`AnalysisError`] for structurally invalid configurations
/// (e.g. a slot smaller than a message a search move produced); searches
/// treat such neighbors as infeasible and skip them.
pub fn evaluate(
    system: &System,
    config: SystemConfig,
    params: &AnalysisParams,
) -> Result<Evaluation, AnalysisError> {
    let outcome = multi_cluster_scheduling(system, &config, params)?;
    let degree = degree_of_schedulability(system, &outcome);
    Ok(Evaluation {
        config,
        degree,
        total_buffers: outcome.queues.total(),
        outcome,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_gen::figure4;
    use mcs_model::Time;

    #[test]
    fn evaluation_reports_costs_for_figure4() {
        let fig = figure4(Time::from_millis(200));
        let params = AnalysisParams::default();
        let a = evaluate(&fig.system, fig.config_a.clone(), &params).expect("valid");
        let b = evaluate(&fig.system, fig.config_b.clone(), &params).expect("valid");
        assert!(!a.is_schedulable());
        assert!(a.schedule_cost() > b.schedule_cost());
        assert!(a.total_buffers > 0);
        // Unschedulable configs always rank after schedulable ones on the
        // resource axis.
        let fig240 = figure4(Time::from_millis(240));
        let b240 = evaluate(&fig240.system, fig240.config_b.clone(), &params).expect("valid");
        assert!(b240.is_schedulable());
        assert!(b240.resource_cost() < a.resource_cost());
    }
}
