//! # mcs-can
//!
//! CAN bus substrate for the multi-cluster analysis: worst-case frame timing
//! with bit stuffing, the priority-queue/arbitration queuing-delay analysis
//! of paper §4.1.1 (extending Tindell/Burns/Wellings' CAN response-time
//! analysis with offsets), and a deterministic arbitration model for the
//! discrete-event simulator.
//!
//! # Examples
//!
//! Worst-case wire time of an 8-byte frame at 500 kbit/s:
//!
//! ```
//! use mcs_can::frame_time;
//! use mcs_model::{CanBusParams, Time};
//!
//! let params = CanBusParams::new(Time::from_micros(2));
//! assert_eq!(frame_time(8, &params), Time::from_micros(270));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arbitration;
mod frame;
mod rta;

pub use arbitration::{Arbiter, Transmission};
pub use frame::{
    frame_bits, frame_time, frames_needed, max_frame_time, message_time, MAX_FRAME_PAYLOAD,
};
pub use rta::{
    blocking_bound, queue_size_bound, queuing_delay, queuing_delay_from, queuing_delay_sorted,
    queuing_delays, queuing_delays_filtered, queuing_delays_into, relative_offset, sound_phase,
    CanFlow,
};
