//! Worst-case CAN frame timing.
//!
//! Classic worst-case transmission time of a CAN 2.0A data frame carrying
//! `s ≤ 8` payload bytes, including worst-case bit stuffing (Tindell, Burns,
//! Wellings — "Calculating CAN Message Response Times", 1995):
//!
//! ```text
//! C = (47 + 8·s + ⌊(34 + 8·s − 1) / 4⌋) · τ_bit
//! ```
//!
//! 47 bits of framing/overhead, 8·s payload bits, and one stuff bit per four
//! bits of the 34 + 8·s stuffable bits. The paper's applications use message
//! sizes of 8–32 bytes; messages larger than 8 bytes are segmented into
//! ⌈s / 8⌉ back-to-back frames and the message transmission time is the sum
//! of the frame times (the kernel's send re-enqueues the continuation frames
//! immediately).

use mcs_model::{CanBusParams, Time};

/// Maximum payload of one CAN 2.0 data frame, in bytes.
pub const MAX_FRAME_PAYLOAD: u32 = 8;

/// Number of wire bits of a single data frame with `payload` bytes,
/// including worst-case stuffing.
///
/// # Panics
///
/// Panics if `payload > 8` (segment the message first; see
/// [`message_time`]).
pub fn frame_bits(payload: u32) -> u64 {
    assert!(
        payload <= MAX_FRAME_PAYLOAD,
        "CAN frames carry at most 8 bytes, got {payload}"
    );
    let data_bits = 8 * u64::from(payload);
    let stuffable = 34 + data_bits;
    47 + data_bits + (stuffable - 1) / 4
}

/// Worst-case wire time of a single data frame with `payload ≤ 8` bytes.
///
/// Honors [`CanBusParams::fixed_frame_time`], which pins every frame to a
/// constant duration (used by the paper's Figure 4 example where
/// `C_m = 10 ms`).
///
/// # Panics
///
/// Panics if `payload > 8`.
pub fn frame_time(payload: u32, params: &CanBusParams) -> Time {
    if let Some(fixed) = params.fixed_frame_time {
        return fixed;
    }
    params.bit_time * frame_bits(payload)
}

/// Number of frames needed to carry a message of `size_bytes`.
pub fn frames_needed(size_bytes: u32) -> u32 {
    size_bytes.div_ceil(MAX_FRAME_PAYLOAD).max(1)
}

/// Worst-case wire time `C_m` of a whole message of `size_bytes`, segmented
/// into as many frames as needed.
///
/// With a fixed frame time configured, the message takes
/// `frames_needed × fixed` (one fixed slot per segment).
pub fn message_time(size_bytes: u32, params: &CanBusParams) -> Time {
    let frames = frames_needed(size_bytes);
    if let Some(fixed) = params.fixed_frame_time {
        return fixed * u64::from(frames);
    }
    let full_frames = size_bytes / MAX_FRAME_PAYLOAD;
    let tail = size_bytes % MAX_FRAME_PAYLOAD;
    let mut total = frame_time(MAX_FRAME_PAYLOAD, params) * u64::from(full_frames);
    if tail > 0 || size_bytes == 0 {
        total += frame_time(tail, params);
    }
    total
}

/// The largest single-frame time on the bus — the maximum time a frame
/// already in transmission can block a higher-priority frame (the
/// non-preemptive blocking quantum).
pub fn max_frame_time(params: &CanBusParams) -> Time {
    frame_time(MAX_FRAME_PAYLOAD, params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_model::Time;

    #[test]
    fn frame_bits_match_tindell_formula() {
        // 8-byte frame: 47 + 64 + floor(97/4) = 47 + 64 + 24 = 135 bits.
        assert_eq!(frame_bits(8), 135);
        // 0-byte frame: 47 + floor(33/4) = 47 + 8 = 55 bits.
        assert_eq!(frame_bits(0), 55);
        // 1-byte frame: 47 + 8 + floor(41/4) = 65 bits.
        assert_eq!(frame_bits(1), 65);
    }

    #[test]
    #[should_panic(expected = "at most 8 bytes")]
    fn frame_bits_rejects_oversized_payload() {
        frame_bits(9);
    }

    #[test]
    fn frame_time_scales_with_bit_time() {
        let params = CanBusParams::new(Time::from_micros(2)); // 500 kbit/s
        assert_eq!(frame_time(8, &params), Time::from_micros(270));
    }

    #[test]
    fn fixed_frame_time_overrides_formula() {
        let params = CanBusParams::with_fixed_frame_time(Time::from_millis(10));
        assert_eq!(frame_time(8, &params), Time::from_millis(10));
        assert_eq!(frame_time(1, &params), Time::from_millis(10));
        assert_eq!(message_time(16, &params), Time::from_millis(20));
    }

    #[test]
    fn segmentation_counts() {
        assert_eq!(frames_needed(0), 1);
        assert_eq!(frames_needed(1), 1);
        assert_eq!(frames_needed(8), 1);
        assert_eq!(frames_needed(9), 2);
        assert_eq!(frames_needed(32), 4);
    }

    #[test]
    fn message_time_sums_segments() {
        let params = CanBusParams::new(Time::from_micros(1));
        let one = frame_time(8, &params);
        assert_eq!(message_time(8, &params), one);
        assert_eq!(message_time(16, &params), one * 2);
        let tail = frame_time(4, &params);
        assert_eq!(message_time(12, &params), one + tail);
        assert_eq!(message_time(0, &params), frame_time(0, &params));
    }

    #[test]
    fn message_time_is_monotone_in_size() {
        let params = CanBusParams::default();
        let mut last = Time::ZERO;
        for s in 0..=64 {
            let t = message_time(s, &params);
            assert!(t >= last, "size {s} shrank the message time");
            last = t;
        }
    }
}
