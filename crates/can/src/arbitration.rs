//! CAN bus arbitration model used by the discrete-event simulator.
//!
//! CAN is a priority bus with collision avoidance: whenever the bus goes
//! idle, of all nodes with a pending frame the one transmitting the frame
//! with the numerically smallest identifier (highest [`Priority`]) wins and
//! transmits non-preemptively. [`Arbiter`] reproduces exactly that behaviour
//! over opaque frame handles.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use mcs_model::{Priority, Time};

/// A frame pending arbitration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Pending<T> {
    priority: Priority,
    /// FIFO tiebreak for identical priorities (which a valid configuration
    /// never produces, but the simulator must stay deterministic regardless).
    sequence: u64,
    payload: T,
}

impl<T: Eq> Ord for Pending<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.priority, self.sequence).cmp(&(other.priority, other.sequence))
    }
}

impl<T: Eq> PartialOrd for Pending<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A transmission in progress.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Transmission<T> {
    /// The frame being transmitted.
    pub payload: T,
    /// When the transmission completes and the bus goes idle.
    pub finish: Time,
}

/// Deterministic CAN arbitration over frames of payload type `T`.
///
/// # Examples
///
/// ```
/// use mcs_can::Arbiter;
/// use mcs_model::{Priority, Time};
///
/// let mut bus: Arbiter<&str> = Arbiter::new();
/// bus.enqueue(Priority::new(2), "low");
/// bus.enqueue(Priority::new(1), "high");
/// let tx = bus
///     .try_start(Time::ZERO, |_| Time::from_micros(270))
///     .expect("bus idle, frames pending");
/// assert_eq!(tx.payload, "high");
/// assert!(bus.is_busy(Time::from_micros(100)));
/// assert!(!bus.is_busy(Time::from_micros(270)));
/// ```
#[derive(Clone, Debug)]
pub struct Arbiter<T> {
    pending: BinaryHeap<Reverse<Pending<T>>>,
    busy_until: Option<Time>,
    sequence: u64,
}

impl<T: Eq> Arbiter<T> {
    /// Creates an idle bus with no pending frames.
    pub fn new() -> Self {
        Arbiter {
            pending: BinaryHeap::new(),
            busy_until: None,
            sequence: 0,
        }
    }

    /// Queues a frame for arbitration.
    pub fn enqueue(&mut self, priority: Priority, payload: T) {
        let sequence = self.sequence;
        self.sequence += 1;
        self.pending.push(Reverse(Pending {
            priority,
            sequence,
            payload,
        }));
    }

    /// Returns `true` if a transmission is in progress at `now`.
    pub fn is_busy(&self, now: Time) -> bool {
        self.busy_until.is_some_and(|t| t > now)
    }

    /// Number of frames awaiting arbitration.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// If the bus is idle at `now` and frames are pending, starts
    /// transmitting the highest-priority frame; `duration` maps the frame to
    /// its wire time.
    ///
    /// Returns the started [`Transmission`], or `None` if the bus is busy or
    /// no frame is pending.
    pub fn try_start(
        &mut self,
        now: Time,
        duration: impl FnOnce(&T) -> Time,
    ) -> Option<Transmission<T>> {
        if self.is_busy(now) {
            return None;
        }
        let Reverse(winner) = self.pending.pop()?;
        let finish = now + duration(&winner.payload);
        self.busy_until = Some(finish);
        Some(Transmission {
            payload: winner.payload,
            finish,
        })
    }

    /// The time the current transmission finishes, if any is in progress.
    pub fn busy_until(&self) -> Option<Time> {
        self.busy_until
    }
}

impl<T: Eq> Default for Arbiter<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn highest_priority_wins_arbitration() {
        let mut bus = Arbiter::new();
        bus.enqueue(Priority::new(5), 'c');
        bus.enqueue(Priority::new(1), 'a');
        bus.enqueue(Priority::new(3), 'b');
        let order: Vec<char> = std::iter::from_fn(|| {
            let tx = bus.try_start(Time::from_millis(100), |_| Time::ZERO)?;
            Some(tx.payload)
        })
        .take(3)
        .collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn transmission_is_non_preemptive() {
        let mut bus = Arbiter::new();
        bus.enqueue(Priority::new(5), "low");
        let tx = bus
            .try_start(Time::ZERO, |_| Time::from_millis(10))
            .expect("idle");
        assert_eq!(tx.finish, Time::from_millis(10));
        // A higher-priority frame arriving mid-transmission must wait.
        bus.enqueue(Priority::new(1), "high");
        assert!(bus
            .try_start(Time::from_millis(5), |_| Time::ZERO)
            .is_none());
        // At finish the bus is idle again and the high frame wins.
        let tx2 = bus
            .try_start(Time::from_millis(10), |_| Time::from_millis(10))
            .expect("idle again");
        assert_eq!(tx2.payload, "high");
    }

    #[test]
    fn equal_priorities_resolve_fifo() {
        let mut bus = Arbiter::new();
        bus.enqueue(Priority::new(1), "first");
        bus.enqueue(Priority::new(1), "second");
        let tx = bus.try_start(Time::ZERO, |_| Time::ZERO).expect("idle");
        assert_eq!(tx.payload, "first");
    }

    #[test]
    fn empty_bus_starts_nothing() {
        let mut bus: Arbiter<u8> = Arbiter::default();
        assert!(bus.try_start(Time::ZERO, |_| Time::ZERO).is_none());
        assert_eq!(bus.pending_count(), 0);
        assert_eq!(bus.busy_until(), None);
    }
}
