//! Worst-case queuing-delay analysis for priority-ordered output queues
//! feeding the CAN bus (paper §4.1.1, extending Tindell's CAN analysis with
//! offsets).
//!
//! The same fixed point bounds the delay in any of the system's priority
//! queues — `Out_Ni` on an ETC node and `Out_CAN` on the gateway — because
//! once a message is at the head of its queue it arbitrates on CAN like any
//! other frame:
//!
//! ```text
//! w_m = B_m + Σ_{j ∈ hp(m)} ⌈(w_m + J_j − O_mj)⁺ / T_j⌉⁺ · C_j
//! B_m = max_{k ∈ lp(m)} C_k
//! ```
//!
//! and the worst-case backlog (queue size bound, paper eq. for `s_Out`):
//!
//! ```text
//! s_Out = max_m [ s_m + Σ_{j ∈ hp(m)} ⌈(w_m + J_j − O_mj)⁺ / T_j⌉⁺ · s_j ]
//! ```

use mcs_model::{Priority, Time};

/// One message flow competing for the CAN bus.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CanFlow {
    /// Unique frame priority (lower level wins arbitration).
    pub priority: Priority,
    /// Activation period `T_m` (the sender graph's period).
    pub period: Time,
    /// Release jitter `J_m` — worst case, the response time of the sender
    /// process (or of the gateway transfer process for TTC→ETC traffic).
    pub jitter: Time,
    /// Earliest enqueue time `O_m` relative to the start of the flow's
    /// transaction (process graph).
    pub offset: Time,
    /// Transaction (process graph) the flow belongs to; offsets only phase
    /// flows of the *same* transaction.
    pub transaction: Option<u32>,
    /// Worst-case transmission time `C_m` of the whole message.
    pub transmission: Time,
    /// Message size `s_m` in bytes (for queue-size bounds).
    pub size_bytes: u32,
    /// Current worst-case response-time iterate `r_m` of the flow. Used only
    /// to gate offset-phase reductions: a nominally phased-away flow still
    /// interferes when its previous instance can carry work into the victim's
    /// busy window (`r_j > T_j − separation`). Zero disables no reductions.
    pub response: Time,
}

/// The relative offset `O_mj` of flow `j` with respect to flow `m`.
///
/// Flows of the same transaction are phased by their static offsets: the
/// first activation of `j` that can interfere with `m` is `O_mj` after `m`'s
/// critical instant, where `O_mj = (O_j − O_m) mod T_j`. Flows of different
/// transactions have no phase relation (`O_mj = 0`, the critical-instant
/// worst case).
pub fn relative_offset(m: &CanFlow, j: &CanFlow) -> Time {
    match (m.transaction, j.transaction) {
        (Some(a), Some(b)) if a == b => {
            if j.offset >= m.offset {
                (j.offset - m.offset) % j.period
            } else {
                let behind = (m.offset - j.offset) % j.period;
                if behind.is_zero() {
                    Time::ZERO
                } else {
                    j.period - behind
                }
            }
        }
        _ => Time::ZERO,
    }
}

/// Blocking bound `B_m`: the longest lower-priority transmission that can
/// already occupy the bus (CAN frames are non-preemptive).
pub fn blocking_bound(flows: &[CanFlow], m: usize) -> Time {
    flows
        .iter()
        .enumerate()
        .filter(|&(k, f)| k != m && !f.priority.is_higher_than(flows[m].priority))
        .map(|(_, f)| f.transmission)
        .fold(Time::ZERO, Time::max)
}

/// Number of activations of `j` falling in a busy window of length `w` of
/// flow `m`, with the ε-tick guard that makes simultaneous zero-jitter
/// releases count as interference.
///
/// Offset phasing is applied only when provably sound:
///
/// * the separation is reduced by `m`'s own jitter (`m`'s enqueue can slide
///   as late as `O_m + J_m` into `j`'s window), and
/// * no reduction at all is taken when an earlier instance of `j` can carry
///   work into `m`'s busy window (`r_j` too large relative to the
///   separation).
fn activations(w: Time, m: &CanFlow, j: &CanFlow) -> u64 {
    let phase = sound_phase(
        m.offset,
        m.jitter,
        j.offset,
        j.period,
        j.response,
        matches!((m.transaction, j.transaction), (Some(a), Some(b)) if a == b),
    );
    let window = (w + j.jitter + Time::from_ticks(1)).saturating_sub(phase);
    if window.is_zero() {
        0
    } else {
        window.div_ceil(j.period)
    }
}

/// The carry-in-safe phase reduction shared by all interference terms.
///
/// With nominal separation `d = O_j − O_m` (same transaction):
///
/// * `d ≥ 0`: `j`'s previous instance (one period earlier) completes by
///   `O_j − T_j + r_j`; it stays clear of `m`'s window iff
///   `r_j ≤ T_j − d`. Then the first interfering activation is `d` after
///   `m`'s nominal enqueue, reduced by `m`'s enqueue jitter.
/// * `d < 0`: `j`'s current instance completes by `O_j + r_j`; it stays
///   clear iff `r_j ≤ −d`, leaving the next activation `d + T_j` away.
///
/// Anything else falls back to the classic critical instant (zero phase).
pub fn sound_phase(
    o_m: Time,
    j_m: Time,
    o_j: Time,
    period_j: Time,
    response_j: Time,
    same_transaction: bool,
) -> Time {
    if !same_transaction {
        return Time::ZERO;
    }
    if o_j >= o_m {
        let d = o_j - o_m;
        if response_j.saturating_add(d) <= period_j {
            d.saturating_sub(j_m)
        } else {
            Time::ZERO
        }
    } else {
        let gap = o_m - o_j;
        if response_j <= gap {
            (gap_complement(gap, period_j)).saturating_sub(j_m)
        } else {
            Time::ZERO
        }
    }
}

/// `T − (gap mod T)`, the forward phase of a flow nominally `gap` earlier.
fn gap_complement(gap: Time, period: Time) -> Time {
    let behind = gap % period;
    if behind.is_zero() {
        Time::ZERO
    } else {
        period - behind
    }
}

/// Computes the worst-case queuing delay `w_m` of every flow.
///
/// Returns `None` for a flow whose fixed point exceeds `horizon` (the
/// utilization is too high for the window to close — the system is
/// unschedulable and the caller should treat the delay as unbounded).
pub fn queuing_delays(flows: &[CanFlow], horizon: Time) -> Vec<Option<Time>> {
    let mut delays = Vec::new();
    queuing_delays_into(flows, horizon, &mut delays);
    delays
}

/// Allocation-free form of [`queuing_delays`]: clears and refills `delays`
/// in flow order, reusing its capacity.
pub fn queuing_delays_into(flows: &[CanFlow], horizon: Time, delays: &mut Vec<Option<Time>>) {
    delays.clear();
    queuing_delays_filtered(flows, horizon, |_| true, delays);
}

/// The one batch implementation behind every multi-flow entry point,
/// parameterized by an entity filter: `delays` is resized to `flows.len()`
/// (extending with `None`, truncating any stale tail), then the queuing
/// delay of each flow `m` with `recompute(m)` is recomputed while the
/// remaining in-range entries keep their previous values. Callers
/// restricting the filter guarantee — e.g. via a dependency closure — that
/// no input of a skipped flow changed, so its previous delay is still the
/// least fixed point.
pub fn queuing_delays_filtered(
    flows: &[CanFlow],
    horizon: Time,
    mut recompute: impl FnMut(usize) -> bool,
    delays: &mut Vec<Option<Time>>,
) {
    delays.resize(flows.len(), None);
    for (m, delay) in delays.iter_mut().enumerate() {
        if recompute(m) {
            *delay = queuing_delay(flows, m, horizon);
        }
    }
}

/// Computes the worst-case queuing delay of `flows[m]`.
///
/// # Panics
///
/// Panics if `m` is out of range or a flow has a zero period.
pub fn queuing_delay(flows: &[CanFlow], m: usize, horizon: Time) -> Option<Time> {
    queuing_delay_from(flows, m, horizon, Time::ZERO)
}

/// [`queuing_delay`] with a warm-start hint: the fixed point starts at
/// `max(blocking, hint)` instead of the blocking bound.
///
/// Passing the delay converged in a previous round of an *outer* fixed
/// point (where jitters and responses only grow and offsets are constant,
/// so the interference operator only grows pointwise) is sound and reaches
/// the **same** least fixed point as a cold start, skipping the re-climb.
/// A hint above the current least fixed point would be unsound; `ZERO`
/// reproduces the cold start exactly.
///
/// # Panics
///
/// Panics if `m` is out of range or a flow has a zero period.
pub fn queuing_delay_from(flows: &[CanFlow], m: usize, horizon: Time, hint: Time) -> Option<Time> {
    let me = &flows[m];
    let hp = |f: &(usize, &CanFlow)| f.0 != m && f.1.priority.is_higher_than(me.priority);
    let blocking = blocking_bound(flows, m);
    let mut w = blocking.max(hint);
    loop {
        let interference: Time = flows
            .iter()
            .enumerate()
            .filter(hp)
            .map(|(_, j)| j.transmission.saturating_mul(activations(w, me, j)))
            .fold(Time::ZERO, Time::saturating_add);
        let next = blocking.saturating_add(interference);
        if next > horizon {
            return None;
        }
        if next == w {
            return Some(w);
        }
        w = next;
    }
}

/// [`queuing_delay_from`] over flows **pre-sorted by descending urgency**
/// (ascending priority level, unique priorities): `flows[..m]` is exactly
/// the higher-priority set, and `blocking` is the caller-precomputed
/// [`blocking_bound`] (a suffix maximum when sorted). Produces bit-identical
/// results to the generic form, skipping the per-call priority filtering
/// and blocking scans — the shape the reusable analysis context calls with.
///
/// # Panics
///
/// Panics if `m` is out of range or a flow has a zero period.
pub fn queuing_delay_sorted(
    flows: &[CanFlow],
    m: usize,
    blocking: Time,
    horizon: Time,
    hint: Time,
) -> Option<Time> {
    let me = &flows[m];
    let mut w = blocking.max(hint);
    loop {
        let interference: Time = flows[..m]
            .iter()
            .map(|j| j.transmission.saturating_mul(activations(w, me, j)))
            .fold(Time::ZERO, Time::saturating_add);
        let next = blocking.saturating_add(interference);
        if next > horizon {
            return None;
        }
        if next == w {
            return Some(w);
        }
        w = next;
    }
}

/// Worst-case backlog in bytes of the priority queue feeding the bus, over
/// the given flows, using converged queuing delays (`None` delays are
/// treated as "all higher-priority instances over the horizon", i.e. the
/// bound degenerates conservatively; callers normally reject unschedulable
/// systems before sizing buffers).
pub fn queue_size_bound(flows: &[CanFlow], delays: &[Option<Time>], horizon: Time) -> u64 {
    flows
        .iter()
        .enumerate()
        .map(|(m, me)| {
            let w = delays[m].unwrap_or(horizon);
            let backlog: u64 = flows
                .iter()
                .enumerate()
                .filter(|&(k, f)| k != m && f.priority.is_higher_than(me.priority))
                .map(|(_, j)| u64::from(j.size_bytes) * activations(w, me, j))
                .sum();
            u64::from(me.size_bytes) + backlog
        })
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow(priority: u32, period_ms: u64, c_ms: u64) -> CanFlow {
        CanFlow {
            priority: Priority::new(priority),
            period: Time::from_millis(period_ms),
            jitter: Time::ZERO,
            offset: Time::ZERO,
            transaction: None,
            transmission: Time::from_millis(c_ms),
            size_bytes: 8,
            response: Time::ZERO,
        }
    }

    #[test]
    fn highest_priority_flow_waits_only_for_blocking() {
        let flows = vec![flow(0, 100, 1), flow(1, 100, 2), flow(2, 100, 3)];
        let w = queuing_delays(&flows, Time::from_millis(1000));
        // m0: blocked by the largest lower-priority frame (3 ms).
        assert_eq!(w[0], Some(Time::from_millis(3)));
        // m2 (lowest): no blocking, interference from m0 and m1.
        assert_eq!(w[2], Some(Time::from_millis(3)));
    }

    #[test]
    fn simultaneous_release_interferes_even_with_zero_jitter() {
        let flows = vec![flow(0, 100, 5), flow(1, 100, 5)];
        let w = queuing_delays(&flows, Time::from_millis(1000));
        // m1 must wait for m0 released at the same critical instant.
        assert_eq!(w[1], Some(Time::from_millis(5)));
    }

    #[test]
    fn jitter_adds_interfering_activations() {
        let mut hi = flow(0, 10, 2);
        hi.jitter = Time::from_millis(9); // nearly one extra period of jitter
        let lo = flow(1, 100, 1);
        let flows = vec![hi, lo];
        let w = queuing_delay(&flows, 1, Time::from_millis(1000)).expect("converges");
        // Window w: ceil((w + 9 + ε)/10) activations of hi.
        // w = 2: ceil(11.001/10) = 2 -> w = 4; ceil(13.001/10) = 2 -> stable.
        assert_eq!(w, Time::from_millis(4));
    }

    #[test]
    fn paper_figure4_out_can_queue() {
        // m1 and m2 both copied into OutCAN by the gateway process T
        // (J = r_T = 5 ms), m1 higher priority, both C = 10 ms, T = 240 ms.
        let m1 = CanFlow {
            priority: Priority::new(0),
            period: Time::from_millis(240),
            jitter: Time::from_millis(5),
            offset: Time::from_millis(80),
            transaction: Some(1),
            transmission: Time::from_millis(10),
            size_bytes: 8,
            response: Time::from_millis(25),
        };
        let m2 = CanFlow {
            offset: Time::from_millis(80),
            priority: Priority::new(1),
            ..m1
        };
        let flows = vec![m1, m2];
        let w = queuing_delays(&flows, Time::from_millis(10_000));
        // m1 can still be blocked by the lower-priority m2 already on the
        // wire (B_m = max lp C_k); this is exactly what makes the paper's
        // J_2 = r_T + w_m1 = 5 + 10 = 15 ms in Figure 4a.
        assert_eq!(w[0], Some(Time::from_millis(10)));
        assert_eq!(w[1], Some(Time::from_millis(10))); // waits for m1: w_m2 = 10
    }

    #[test]
    fn relative_offsets_phase_same_transaction_flows() {
        let mut a = flow(0, 100, 1);
        let mut b = flow(1, 100, 1);
        a.transaction = Some(7);
        b.transaction = Some(7);
        a.offset = Time::from_millis(10);
        b.offset = Time::from_millis(30);
        // b activates 20 ms after a.
        assert_eq!(relative_offset(&a, &b), Time::from_millis(20));
        // a's next activation relative to b is 80 ms later (wraps by period).
        assert_eq!(relative_offset(&b, &a), Time::from_millis(80));
        // Different transactions: no phasing.
        b.transaction = Some(8);
        assert_eq!(relative_offset(&a, &b), Time::ZERO);
    }

    #[test]
    fn offset_separation_removes_interference() {
        // Same transaction, b activates 50 ms after a; a's queuing window is
        // far shorter than 50 ms, so b never interferes with a... and vice
        // versa within one period.
        let mut a = flow(1, 100, 2);
        let mut b = flow(0, 100, 2);
        a.transaction = Some(1);
        b.transaction = Some(1);
        a.offset = Time::ZERO;
        b.offset = Time::from_millis(50);
        let flows = vec![a, b];
        let w = queuing_delays(&flows, Time::from_millis(1000));
        // a (lower priority) sees b phased 50 ms away: no interference.
        assert_eq!(w[0], Some(Time::ZERO));
    }

    #[test]
    fn overload_diverges_to_none() {
        // Three flows each needing 60 of every 100 ms: the higher-priority
        // demand on the lowest flow is 120 % utilization, so its queuing
        // window never closes.
        let flows = vec![flow(0, 100, 60), flow(1, 100, 60), flow(2, 100, 60)];
        let w = queuing_delays(&flows, Time::from_millis(10_000));
        assert_eq!(w[0], Some(Time::from_millis(60))); // blocked once
        assert_eq!(w[2], None);
    }

    #[test]
    fn queue_size_bound_counts_backlog_bytes() {
        let mut hi = flow(0, 100, 10);
        hi.size_bytes = 16;
        let mut lo = flow(1, 100, 10);
        lo.size_bytes = 8;
        let flows = vec![hi, lo];
        let horizon = Time::from_millis(1000);
        let w = queuing_delays(&flows, horizon);
        // Worst case for lo: itself plus one instance of hi.
        assert_eq!(queue_size_bound(&flows, &w, horizon), 8 + 16);
    }

    #[test]
    fn queue_size_bound_empty_is_zero() {
        assert_eq!(queue_size_bound(&[], &[], Time::from_millis(1)), 0);
    }

    #[test]
    fn filtered_delays_recompute_only_the_selected_flows() {
        let flows = vec![flow(0, 100, 1), flow(1, 100, 2), flow(2, 100, 3)];
        let horizon = Time::from_millis(1000);
        let full = queuing_delays(&flows, horizon);
        // A poisoned buffer: the filter must leave unselected entries
        // untouched and resize missing ones with `None`.
        let poison = Some(Time::from_millis(999));
        let mut delays = vec![poison];
        queuing_delays_filtered(&flows, horizon, |m| m != 0, &mut delays);
        assert_eq!(delays[0], poison);
        assert_eq!(delays[1], full[1]);
        assert_eq!(delays[2], full[2]);
        // Selecting everything reproduces the batch form.
        queuing_delays_filtered(&flows, horizon, |_| true, &mut delays);
        assert_eq!(delays, full);
    }
}
