//! Property-based tests for the CAN substrate.

use proptest::prelude::*;

use mcs_can::{
    blocking_bound, frame_time, frames_needed, message_time, queuing_delays, sound_phase, CanFlow,
};
use mcs_model::{CanBusParams, Priority, Time};

fn arb_flow(max_priority: u32) -> impl Strategy<Value = CanFlow> {
    (
        0..max_priority,
        100u64..10_000,
        0u64..500,
        0u64..2_000,
        1u64..200,
        1u32..64,
    )
        .prop_map(|(prio, period, jitter, offset, c, size)| CanFlow {
            priority: Priority::new(prio),
            period: Time::from_ticks(period * 100),
            jitter: Time::from_ticks(jitter),
            offset: Time::from_ticks(offset),
            transaction: None,
            transmission: Time::from_ticks(c),
            size_bytes: size,
            response: Time::ZERO,
        })
}

proptest! {
    #[test]
    fn message_time_is_monotone_and_additive_in_frames(size in 0u32..256, bit in 1u64..20) {
        let params = CanBusParams::new(Time::from_ticks(bit));
        let t = message_time(size, &params);
        let t_next = message_time(size + 1, &params);
        prop_assert!(t_next >= t);
        // Never more than frames x the largest frame time.
        prop_assert!(t <= frame_time(8, &params) * u64::from(frames_needed(size)));
    }

    /// Queuing delays are monotone: growing any flow's jitter can only grow
    /// (or keep) every other flow's delay.
    #[test]
    fn delays_are_monotone_in_jitter(
        mut flows in proptest::collection::vec(arb_flow(1_000_000), 2..8),
        extra in 1u64..5_000,
    ) {
        // Make priorities unique to model a real bus.
        for (i, f) in flows.iter_mut().enumerate() {
            f.priority = Priority::new(i as u32);
        }
        let horizon = Time::from_ticks(u64::MAX / 4);
        let before = queuing_delays(&flows, horizon);
        flows[0].jitter += Time::from_ticks(extra);
        let after = queuing_delays(&flows, horizon);
        for (b, a) in before.iter().zip(&after).skip(1) {
            match (b, a) {
                (Some(b), Some(a)) => prop_assert!(a >= b),
                (None, Some(_)) => prop_assert!(false, "divergence cannot heal"),
                _ => {}
            }
        }
    }

    /// The blocking bound is exactly the largest lower-priority
    /// transmission.
    #[test]
    fn blocking_is_max_of_lp(mut flows in proptest::collection::vec(arb_flow(1_000_000), 1..8)) {
        for (i, f) in flows.iter_mut().enumerate() {
            f.priority = Priority::new(i as u32);
        }
        for m in 0..flows.len() {
            let expected = flows[m + 1..]
                .iter()
                .map(|f| f.transmission)
                .fold(Time::ZERO, Time::max);
            prop_assert_eq!(blocking_bound(&flows, m), expected);
        }
    }

    /// `sound_phase` is bounded by the interferer's period and collapses to
    /// zero across transactions.
    #[test]
    fn phase_is_bounded(
        o_m in 0u64..10_000,
        j_m in 0u64..5_000,
        o_j in 0u64..10_000,
        period in 1u64..10_000,
        response in 0u64..10_000,
    ) {
        let phase = sound_phase(
            Time::from_ticks(o_m),
            Time::from_ticks(j_m),
            Time::from_ticks(o_j),
            Time::from_ticks(period),
            Time::from_ticks(response),
            true,
        );
        // The phase postpones the first interference by at most... the
        // nominal separation itself; and across transactions it is zero.
        prop_assert!(phase <= Time::from_ticks(o_j.max(period)));
        let none = sound_phase(
            Time::from_ticks(o_m),
            Time::from_ticks(j_m),
            Time::from_ticks(o_j),
            Time::from_ticks(period),
            Time::from_ticks(response),
            false,
        );
        prop_assert_eq!(none, Time::ZERO);
    }

    /// A large interferer response disables any backward phase reduction
    /// (the carry-in guard).
    #[test]
    fn carry_in_disables_reduction(
        gap in 1u64..1_000,
        period in 1_001u64..10_000,
    ) {
        // j nominally `gap` before m, with r_j > gap: no reduction allowed.
        let phase = sound_phase(
            Time::from_ticks(1_000),
            Time::ZERO,
            Time::from_ticks(1_000 - gap),
            Time::from_ticks(period),
            Time::from_ticks(gap + 1),
            true,
        );
        prop_assert_eq!(phase, Time::ZERO);
    }
}
