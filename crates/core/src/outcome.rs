//! Public result types of the multi-cluster analysis.

use std::collections::HashMap;

use mcs_model::{GraphId, MessageId, NodeId, ProcessId, Time};
use mcs_ttp::TtcSchedule;

/// Worst-case timing of one process or of one message leg: the offset `O`
/// (earliest activation/enqueue relative to the graph start), the release
/// jitter `J`, the queuing/interference delay `w`, and the response time
/// `r = J + w + C`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EntityTiming {
    /// Offset `O`: earliest activation, relative to graph activation.
    pub offset: Time,
    /// Release jitter `J`: worst-case delay of the activation past `O`.
    pub jitter: Time,
    /// Interference/queuing delay `w`.
    pub delay: Time,
    /// Worst-case response time `r = J + w + C`, measured from `O`.
    pub response: Time,
}

impl EntityTiming {
    /// Worst-case completion/arrival relative to the graph activation:
    /// `O + r`.
    pub fn worst_completion(&self) -> Time {
        self.offset.saturating_add(self.response)
    }
}

/// Timing of a gateway-crossing message, split per leg.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MessageTiming {
    /// The CAN leg (or the only leg for intra-ETC messages; for TTC→ETC
    /// traffic this is the `Out_CAN` → CAN bus leg).
    pub can: Option<EntityTiming>,
    /// The TTP leg through `Out_TTP` and the gateway slot (ETC→TTC traffic).
    pub ttp: Option<EntityTiming>,
    /// Worst-case end-to-end arrival at the destination node, relative to
    /// the graph activation.
    pub arrival: Time,
}

/// Worst-case queue (buffer) size bounds, in bytes (paper §4.1).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct QueueBounds {
    /// `s_Out^CAN`: the gateway's TTP→CAN priority queue.
    pub out_can: u64,
    /// `s_Out^TTP`: the gateway's CAN→TTP FIFO.
    pub out_ttp: u64,
    /// `s_Out^Ni`: per-ETC-node CAN output queues.
    pub out_node: HashMap<NodeId, u64>,
}

impl QueueBounds {
    /// The total queue size `s_total = s_Out^CAN + s_Out^TTP + Σ s_Out^Ni`
    /// minimized by the resource optimizer.
    pub fn total(&self) -> u64 {
        self.out_can + self.out_ttp + self.out_node.values().sum::<u64>()
    }
}

/// The complete outcome of `MultiClusterScheduling`: the TTC schedule tables
/// and MEDLs, per-entity worst-case timing, queue bounds and per-graph
/// response times.
#[derive(Clone, Debug)]
pub struct AnalysisOutcome {
    /// The static schedule of the TTC (schedule tables + MEDLs), realizing φ.
    pub schedule: TtcSchedule,
    /// Timing of every process (TT and ET).
    pub process_timing: HashMap<ProcessId, EntityTiming>,
    /// Timing of every message with a dynamic (CAN and/or FIFO) leg.
    pub message_timing: HashMap<MessageId, MessageTiming>,
    /// Queue size bounds.
    pub queues: QueueBounds,
    /// Worst-case response time `r_G = O_sink + r_sink` of every graph.
    pub graph_response: HashMap<GraphId, Time>,
    /// Whether every fixed point converged within the analysis horizon.
    /// When `false`, diverged delays were clamped to the horizon and the
    /// system is definitely unschedulable.
    pub converged: bool,
    /// Number of outer (schedule ↔ RTA) iterations performed.
    pub iterations: u32,
}

impl AnalysisOutcome {
    /// The worst-case response time of `graph`.
    ///
    /// # Panics
    ///
    /// Panics if the graph was not part of the analyzed application.
    pub fn graph_response(&self, graph: GraphId) -> Time {
        self.graph_response[&graph]
    }

    /// The timing of `process`.
    ///
    /// # Panics
    ///
    /// Panics if the process was not part of the analyzed application.
    pub fn process_timing(&self, process: ProcessId) -> EntityTiming {
        self.process_timing[&process]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worst_completion_adds_offset_and_response() {
        let t = EntityTiming {
            offset: Time::from_millis(80),
            jitter: Time::from_millis(15),
            delay: Time::from_millis(20),
            response: Time::from_millis(55),
        };
        assert_eq!(t.worst_completion(), Time::from_millis(135));
    }

    #[test]
    fn queue_total_sums_all_queues() {
        let mut q = QueueBounds {
            out_can: 24,
            out_ttp: 16,
            out_node: HashMap::new(),
        };
        q.out_node.insert(NodeId::new(1), 8);
        q.out_node.insert(NodeId::new(3), 32);
        assert_eq!(q.total(), 80);
    }

    #[test]
    fn default_queue_bounds_are_empty() {
        assert_eq!(QueueBounds::default().total(), 0);
    }
}
