//! # mcs-core
//!
//! Schedulability analysis for multi-cluster distributed embedded systems —
//! the primary contribution of *Pop, Eles, Peng — DATE 2003*.
//!
//! Given a [`System`](mcs_model::System) (application + two-cluster
//! architecture) and a configuration ψ = ⟨β, π⟩
//! ([`SystemConfig`](mcs_model::SystemConfig)), [`multi_cluster_scheduling`]
//! resolves the circular dependency between the statically scheduled TTC and
//! the priority-scheduled ETC, producing
//!
//! * the TTC schedule tables and MEDLs (the offsets φ),
//! * worst-case response times for every ET process and message leg,
//! * worst-case gateway queuing delays (`w^CAN`, `w^Ni`, `w^TTP`) and buffer
//!   bounds (`s_Out^CAN`, `s_Out^Ni`, `s_Out^TTP`),
//! * per-graph response times and the degree of schedulability δΓ.
//!
//! # The reusable analysis context
//!
//! Synthesis loops run this analysis thousands of times per instance, so the
//! engine is split into two halves (see [`Evaluator`]):
//!
//! * a **system context** built once per system — message routes, CAN frame
//!   times, per-graph phase groups, per-ET-CPU process partitions,
//!   gateway-crossing message lists, per-graph sinks, the analysis horizon —
//!   everything that does not depend on the configuration ψ; and
//! * **scratch state** — the `O/J/w/r` fixed-point vectors of processes and
//!   message legs, the flow buffers handed to the CAN/CPU/FIFO kernels, the
//!   outer-loop release maps and the TTC schedule — which is *cleared, not
//!   reallocated*, between evaluations.
//!
//! [`Evaluator::evaluate`] runs one configuration against the context and
//! returns a cheap [`EvalSummary`] (δΓ and `s_total`); the full
//! [`AnalysisOutcome`] maps are only materialized on demand via
//! [`Evaluator::outcome`]. [`multi_cluster_scheduling`] wraps the same engine
//! for one-shot use, so both paths produce identical results.
//!
//! On top of that, [`Evaluator::evaluate_delta`] re-evaluates a *slightly
//! changed* configuration incrementally: the search loop reports the seed
//! entities its move touched ([`DeltaSeeds`]), the seeds are closed over a
//! static entity-dependency graph into a dirty cone, and only the RTA
//! kernels inside the cone are re-run against per-iteration analysis
//! snapshots — bit-identical to a full evaluation, at a fraction of the
//! kernel work.
//!
//! [`Evaluator::evaluate_batch`] lifts the same contract to whole candidate
//! *neighborhoods*: N sibling configurations share the base's converged
//! state once and re-climb their divergent tails data-parallel across
//! reusable [`BatchScratch`] lanes — bit-identical to N sequential
//! [`Evaluator::evaluate_delta`] calls from the same base state (see the
//! [`batch`](self) module docs on `BatchRequest`/`BatchScratch`).
//!
//! # Examples
//!
//! ```
//! use mcs_model::{
//!     Application, Architecture, NodeRole, Priority, PriorityAssignment,
//!     SystemConfig, System, TdmaConfig, TdmaSlot, Time,
//! };
//! use mcs_core::{degree_of_schedulability, multi_cluster_scheduling, AnalysisParams};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut arch = Architecture::builder();
//! let n1 = arch.add_node("N1", NodeRole::TimeTriggered);
//! let n2 = arch.add_node("N2", NodeRole::EventTriggered);
//! let ng = arch.add_node("NG", NodeRole::Gateway);
//! let arch = arch.build()?;
//!
//! let mut app = Application::builder();
//! let g = app.add_graph("G1", Time::from_millis(240), Time::from_millis(200));
//! let p1 = app.add_process(g, "P1", n1, Time::from_millis(30));
//! let p2 = app.add_process(g, "P2", n2, Time::from_millis(20));
//! app.link(p1, p2, 8);
//! let app = app.build(&arch)?;
//! let system = System::new(app, arch);
//!
//! let tdma = TdmaConfig::new(vec![
//!     TdmaSlot { node: ng, capacity_bytes: 8 },
//!     TdmaSlot { node: n1, capacity_bytes: 8 },
//! ]);
//! let mut priorities = PriorityAssignment::new();
//! priorities.set_process(p2, Priority::new(1));
//! priorities.set_message(mcs_model::MessageId::new(0), Priority::new(1));
//! let config = SystemConfig::new(tdma, priorities);
//!
//! let outcome = multi_cluster_scheduling(&system, &config, &AnalysisParams::default())?;
//! let degree = degree_of_schedulability(&system, &outcome);
//! assert!(degree.is_schedulable());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod context;
mod delta;
mod holistic;
mod multicluster;
mod outcome;
mod queues;
mod report;
mod rta;
mod schedulability;
mod validate;

pub use batch::{BatchRequest, BatchScratch};
pub use context::{EvalSummary, Evaluator};
pub use delta::DeltaSeeds;
pub use multicluster::{multi_cluster_scheduling, AnalysisError, AnalysisParams, FifoBound};
pub use outcome::{AnalysisOutcome, EntityTiming, MessageTiming, QueueBounds};
pub use queues::{
    fifo_blocking, fifo_delay, fifo_delay_from, fifo_delay_occurrence, fifo_delays,
    fifo_size_bound, FifoDelay, FifoFlow, TtpQueueParams,
};
pub use report::{json_line, render_report, JsonField, JsonLinesWriter};
pub use rta::{
    interference_delay, interference_delay_from, interference_delay_sorted, interference_delays,
    interference_delays_filtered, interference_delays_into, relative_phase, TaskFlow,
};
pub use schedulability::{degree_of_schedulability, is_schedulable, SchedulabilityDegree};
pub use validate::validate_config;
