//! The reusable analysis context: a [`SystemContext`] of system-invariant
//! tables built once per [`System`], plus a [`Scratch`] of fixed-point state
//! that is cleared — not reallocated — between runs.
//!
//! Synthesis loops (simulated annealing, the OS/OR heuristics) evaluate
//! `MultiClusterScheduling` hundreds to thousands of times per instance,
//! varying only the configuration ψ. Rebuilding message routes, CAN frame
//! times, phase groups and every fixed-point vector on each evaluation
//! dominated the hot path; the [`Evaluator`] amortizes all of it:
//!
//! * **`SystemContext`** (immutable per system): message routes, CAN wire
//!   times `C_m`, per-graph phase groups, per-ET-CPU process partitions,
//!   gateway-crossing message index lists, per-graph sinks and the analysis
//!   horizon.
//! * **`Scratch`** (mutable, reused): the `O/J/w/r` vectors of processes and
//!   of both message legs, arrival times, FIFO backlogs, flow buffers handed
//!   to the CAN/CPU/FIFO kernels, the release maps of the outer fixed point
//!   and the reused [`TtcSchedule`].
//!
//! [`Evaluator::evaluate`] returns a cheap [`EvalSummary`] (δΓ, `s_total`);
//! the full [`AnalysisOutcome`] is materialized on demand by
//! [`Evaluator::outcome`], so inner search loops never pay for the result
//! maps they do not read.
//!
//! # Incremental (delta) evaluation
//!
//! A single design transformation perturbs only a small cone of the
//! holistic fixed point. [`Evaluator::evaluate_delta`] exploits that: the
//! optimizer reports the seed entities a move touched
//! ([`DeltaSeeds`](crate::DeltaSeeds)), the seeds are closed over the
//! static entity-dependency graph of [`crate::delta`] (route successors,
//! priority-band interference sets on each ET CPU and the CAN bus,
//! phase-group membership, gateway coupling), and the outer
//! schedule↔analysis loop *replays the evaluation trajectory*:
//!
//! * every outer iteration's schedule memo ([`SchedCacheEntry`]) carries an
//!   [`AnalysisSnapshot`] of the holistic state it converged to;
//! * an iteration whose schedule inputs hit the memo extends that snapshot
//!   through restricted dirty-cone passes ([`Holistic::run_delta`]) — clean
//!   entities keep their converged values *as the least fixed point*, dirty
//!   entities restart from the bottom of the lattice;
//! * an iteration whose release bounds changed is re-scheduled, the new
//!   schedule is **diffed** against the snapshot's
//!   ([`TtcSchedule::diff_into`]) and the moved placements join the cone;
//! * an iteration whose cone contains no release input is skipped outright
//!   (its derived releases are read straight off the snapshot), with its
//!   seeds parked on the slot's pending list;
//! * everything else — structural (TDMA) changes, stale/diverged/unstable
//!   snapshots, cones past [`AnalysisParams::delta_frontier_percent`] —
//!   falls back to the full fixed point of that iteration.
//!
//! Results are **bit-identical** to [`Evaluator::evaluate`] by
//! construction; the equivalence is enforced by property tests in
//! `crates/opt/tests/` and against the frozen seed implementation in
//! `mcs-bench`.

use std::collections::HashMap;

use mcs_model::{MessageId, MessageRoute, NodeId, ProcessId, System, SystemConfig, Time};
use mcs_ttp::{
    critical_path_priorities_into, list_schedule_dense_into, DenseSchedulerInput, TtcSchedule,
};

use rayon::prelude::*;

use crate::batch::{BatchRequest, BatchScratch, Lane};
use crate::delta::{close_dirty, DeltaSeeds, DirtySet};
use crate::holistic::Holistic;
use crate::multicluster::{AnalysisError, AnalysisParams};
use crate::outcome::{AnalysisOutcome, EntityTiming, MessageTiming, QueueBounds};
use crate::queues::TtpQueueParams;
use crate::rta::TaskFlow;
use crate::schedulability::SchedulabilityDegree;
use crate::validate::validate_config;

/// One ET-scheduled CPU and the processes it hosts.
#[derive(Clone, Debug)]
pub(crate) struct EtNode {
    /// The gateway CPU additionally hosts the transfer process `T`.
    pub is_gateway: bool,
    /// Hosted processes in id order.
    pub procs: Vec<ProcessId>,
}

/// One entity of the worklist fixed-point engine (see [`crate::holistic`]):
/// everything the holistic analysis derives a changing value for. TT
/// processes and TTC→TTC messages are *not* entities — their timing is fixed
/// by the schedule table and staged once per run.
#[derive(Clone, Copy, Debug)]
pub(crate) enum WlEntity {
    /// An ET-hosted process, by process index.
    Proc(u32),
    /// The CAN leg of a message, by message index.
    Can(u32),
    /// The `Out_TTP` FIFO leg of an ETC→TTC message, by message index.
    Fifo(u32),
}

/// System-invariant tables shared by every evaluation of one [`System`].
#[derive(Clone, Debug)]
pub(crate) struct SystemContext {
    /// Route of each message, by message index.
    pub route: Vec<MessageRoute>,
    /// CAN wire time `C_m` of each message, by message index.
    pub can_c: Vec<Time>,
    /// Period of each message (its graph's period), by message index.
    pub msg_period: Vec<Time>,
    /// Payload size of each message in bytes, by message index.
    pub msg_size: Vec<u32>,
    /// Phase group of each message's graph, by message index.
    pub msg_phase: Vec<u32>,
    /// Period of each process (its graph's period), by process index.
    pub proc_period: Vec<Time>,
    /// WCET of each process, by process index.
    pub proc_wcet: Vec<Time>,
    /// BCET of each process, by process index.
    pub proc_bcet: Vec<Time>,
    /// Blocking bound of each process, by process index.
    pub proc_blocking: Vec<Time>,
    /// Phase group of each process's graph, by process index.
    pub proc_phase: Vec<u32>,
    /// Whether each process runs on a statically scheduled (TT) CPU.
    pub proc_is_tt: Vec<bool>,
    /// Processes with a local deadline, with the deadline.
    pub local_deadlines: Vec<(usize, Time)>,
    /// ET CPUs and their process partitions.
    pub et_nodes: Vec<EtNode>,
    /// Messages with a CAN leg, in id order.
    pub can_ids: Vec<usize>,
    /// ETC→TTC messages (through `Out_TTP`), in id order.
    pub fifo_ids: Vec<usize>,
    /// TTC→ETC messages (through `Out_CAN`), in id order.
    pub out_can_ids: Vec<usize>,
    /// Per CAN-attached node: the CAN messages originated there (`Out_Ni`).
    pub out_node_ids: Vec<(NodeId, Vec<usize>)>,
    /// Messages whose TTP frame is sent by an ET-scheduled (gateway) CPU —
    /// their frame release depends on the sender's response time.
    pub et_ttp_senders: Vec<usize>,
    /// Sink processes of each graph, by graph index.
    pub sinks: Vec<Vec<ProcessId>>,
    /// The divergence horizon: `horizon_factor × hyperperiod`.
    pub horizon: Time,
    // Static entity-dependency tables for delta evaluation (see
    // [`crate::delta`]).
    /// Number of process graphs (phase groups are per graph).
    pub n_graphs: usize,
    /// Graph index of each process.
    pub proc_graph: Vec<u32>,
    /// Graph index of each message.
    pub msg_graph: Vec<u32>,
    /// Destination process index of each message.
    pub msg_dest: Vec<u32>,
    /// Index into [`SystemContext::et_nodes`] of each ET-hosted process.
    pub proc_et_node: Vec<Option<u32>>,
    /// Direct (message-free) ET successors of each ET process.
    pub proc_direct_succ: Vec<Vec<u32>>,
    /// Outgoing messages of each ET process whose legs the analysis derives
    /// from the sender's response (ETC→ETC and ETC→TTC routes).
    pub proc_out_et_msgs: Vec<Vec<u32>>,
    /// Whether the process sources an ET-sent TTP frame: its completion
    /// bounds the frame's release — an input of the static scheduler.
    pub proc_feeds_msg_release: Vec<bool>,
    /// Source process index of each message.
    pub msg_src: Vec<u32>,
    /// Position of each ETC→TTC message in the FIFO flow array (by message
    /// index; `usize::MAX` for non-FIFO messages).
    pub fifo_pos: Vec<usize>,
    // Static tables of the worklist fixed-point engine (see
    // [`crate::holistic`]): every analyzed entity in dataflow order —
    // graphs in id order, processes in topological order within each graph,
    // each process followed by the message legs it sources.
    /// The engine's entities, indexed by worklist key.
    pub wl_entities: Vec<WlEntity>,
    /// Worklist key of each ET process (`u32::MAX` for TT processes).
    pub wl_key_proc: Vec<u32>,
    /// Worklist key of each CAN leg (`u32::MAX` without a CAN leg).
    pub wl_key_can: Vec<u32>,
    /// Worklist key of each FIFO leg (`u32::MAX` for non-FIFO messages).
    pub wl_key_fifo: Vec<u32>,
}

impl SystemContext {
    fn new(system: &System, params: &AnalysisParams) -> Self {
        let app = &system.application;
        let arch = &system.architecture;

        let route: Vec<MessageRoute> = app
            .messages()
            .iter()
            .map(|m| system.route(m.id()))
            .collect();
        let can_params = arch.can_params();
        let can_c: Vec<Time> = app
            .messages()
            .iter()
            .map(|m| mcs_can::message_time(m.size_bytes(), &can_params))
            .collect();
        let msg_period: Vec<Time> = app
            .messages()
            .iter()
            .map(|m| app.message_period(m.id()))
            .collect();
        let msg_size: Vec<u32> = app.messages().iter().map(|m| m.size_bytes()).collect();
        let proc_period: Vec<Time> = app
            .processes()
            .iter()
            .map(|p| app.process_period(p.id()))
            .collect();
        let proc_wcet: Vec<Time> = app.processes().iter().map(|p| p.wcet()).collect();
        let proc_bcet: Vec<Time> = app.processes().iter().map(|p| p.bcet()).collect();
        let proc_blocking: Vec<Time> = app.processes().iter().map(|p| p.blocking()).collect();
        let proc_is_tt: Vec<bool> = app
            .processes()
            .iter()
            .map(|p| arch.is_tt_cpu(p.node()))
            .collect();
        let local_deadlines: Vec<(usize, Time)> = app
            .processes()
            .iter()
            .filter_map(|p| p.local_deadline().map(|d| (p.id().index(), d)))
            .collect();

        let mut period_groups: HashMap<Time, u32> = HashMap::new();
        let phase_group: Vec<u32> = app
            .graphs()
            .iter()
            .map(|g| {
                let next = period_groups.len() as u32;
                *period_groups.entry(g.period()).or_insert(next)
            })
            .collect();
        let msg_phase: Vec<u32> = app
            .messages()
            .iter()
            .map(|m| phase_group[m.graph().index()])
            .collect();
        let proc_phase: Vec<u32> = app
            .processes()
            .iter()
            .map(|p| phase_group[p.graph().index()])
            .collect();

        let gateway = arch.gateway();
        let et_nodes: Vec<EtNode> = arch
            .nodes()
            .iter()
            .filter(|n| arch.is_et_cpu(n.id()))
            .map(|n| EtNode {
                is_gateway: n.id() == gateway,
                procs: app.processes_on(n.id()).map(|p| p.id()).collect(),
            })
            .filter(|n| !n.procs.is_empty())
            .collect();

        let can_ids: Vec<usize> = (0..route.len())
            .filter(|&mi| route[mi].uses_can())
            .collect();
        let fifo_ids: Vec<usize> = (0..route.len())
            .filter(|&mi| matches!(route[mi], MessageRoute::EtcToTtc))
            .collect();
        let out_can_ids: Vec<usize> = (0..route.len())
            .filter(|&mi| matches!(route[mi], MessageRoute::TtcToEtc))
            .collect();
        let out_node_ids: Vec<(NodeId, Vec<usize>)> = arch
            .can_nodes()
            .map(|node| {
                let ids: Vec<usize> = (0..route.len())
                    .filter(|&mi| {
                        route[mi].uses_can()
                            && !matches!(route[mi], MessageRoute::TtcToEtc)
                            && app.process(app.messages()[mi].source()).node() == node.id()
                    })
                    .collect();
                (node.id(), ids)
            })
            .filter(|(_, ids)| !ids.is_empty())
            .collect();
        let et_ttp_senders: Vec<usize> = (0..route.len())
            .filter(|&mi| {
                route[mi].uses_ttp()
                    && !matches!(route[mi], MessageRoute::EtcToTtc)
                    && arch.is_et_cpu(app.process(app.messages()[mi].source()).node())
            })
            .collect();

        let sinks: Vec<Vec<ProcessId>> = app.graphs().iter().map(|g| app.sinks(g.id())).collect();

        let horizon = app
            .hyperperiod()
            .saturating_mul(params.horizon_factor.max(1));

        // Static dependency tables for delta evaluation.
        let proc_graph: Vec<u32> = app
            .processes()
            .iter()
            .map(|p| p.graph().index() as u32)
            .collect();
        let msg_graph: Vec<u32> = app
            .messages()
            .iter()
            .map(|m| m.graph().index() as u32)
            .collect();
        let msg_dest: Vec<u32> = app
            .messages()
            .iter()
            .map(|m| m.dest().index() as u32)
            .collect();
        let mut proc_et_node: Vec<Option<u32>> = vec![None; proc_is_tt.len()];
        for (ni, et) in et_nodes.iter().enumerate() {
            for p in &et.procs {
                proc_et_node[p.index()] = Some(ni as u32);
            }
        }
        let mut proc_direct_succ: Vec<Vec<u32>> = vec![Vec::new(); proc_is_tt.len()];
        let mut proc_out_et_msgs: Vec<Vec<u32>> = vec![Vec::new(); proc_is_tt.len()];
        for p in app.processes() {
            let pi = p.id().index();
            for e in app.successors(p.id()) {
                match e.message {
                    None => {
                        // TT destinations are fixed by the schedule table
                        // and absorb no timing dirtiness.
                        if !proc_is_tt[e.dest.index()] {
                            proc_direct_succ[pi].push(e.dest.index() as u32);
                        }
                    }
                    Some(m) => {
                        let mi = m.index();
                        // Only ET-sent legs derive from the sender's
                        // response; TT-sent legs are frame-driven.
                        if matches!(route[mi], MessageRoute::EtcToEtc | MessageRoute::EtcToTtc) {
                            proc_out_et_msgs[pi].push(mi as u32);
                        }
                    }
                }
            }
        }
        let mut proc_feeds_msg_release = vec![false; proc_is_tt.len()];
        for &mi in &et_ttp_senders {
            proc_feeds_msg_release[app.messages()[mi].source().index()] = true;
        }
        let msg_src: Vec<u32> = app
            .messages()
            .iter()
            .map(|m| m.source().index() as u32)
            .collect();
        let mut fifo_pos = vec![usize::MAX; route.len()];
        for (k, &mi) in fifo_ids.iter().enumerate() {
            fifo_pos[mi] = k;
        }

        // Worklist entity order: dataflow-first (topological within each
        // graph, legs right after their source), so the engine's first
        // visits resolve offsets before any dependent reads them and
        // requeues are dominated by same-direction propagation.
        let mut wl_entities = Vec::new();
        let mut wl_key_proc = vec![u32::MAX; proc_is_tt.len()];
        let mut wl_key_can = vec![u32::MAX; route.len()];
        let mut wl_key_fifo = vec![u32::MAX; route.len()];
        for graph in app.graphs() {
            for &p in app.topological_order(graph.id()) {
                let pi = p.index();
                if !proc_is_tt[pi] {
                    wl_key_proc[pi] = wl_entities.len() as u32;
                    wl_entities.push(WlEntity::Proc(pi as u32));
                }
                for e in app.successors(p) {
                    let Some(m) = e.message else { continue };
                    let mi = m.index();
                    if route[mi].uses_can() {
                        wl_key_can[mi] = wl_entities.len() as u32;
                        wl_entities.push(WlEntity::Can(mi as u32));
                    }
                    if matches!(route[mi], MessageRoute::EtcToTtc) {
                        wl_key_fifo[mi] = wl_entities.len() as u32;
                        wl_entities.push(WlEntity::Fifo(mi as u32));
                    }
                }
            }
        }

        SystemContext {
            route,
            can_c,
            msg_period,
            msg_size,
            msg_phase,
            proc_period,
            proc_wcet,
            proc_bcet,
            proc_blocking,
            proc_phase,
            proc_is_tt,
            local_deadlines,
            et_nodes,
            can_ids,
            fifo_ids,
            out_can_ids,
            out_node_ids,
            et_ttp_senders,
            sinks,
            horizon,
            n_graphs: app.graphs().len(),
            proc_graph,
            msg_graph,
            msg_dest,
            proc_et_node,
            proc_direct_succ,
            proc_out_et_msgs,
            proc_feeds_msg_release,
            msg_src,
            fifo_pos,
            wl_entities,
            wl_key_proc,
            wl_key_can,
            wl_key_fifo,
        }
    }
}

/// Reusable fixed-point state: cleared, never reallocated, between runs.
#[derive(Clone, Debug, Default)]
pub(crate) struct Scratch {
    // Process state, by process index.
    pub po: Vec<Time>,
    pub pj: Vec<Time>,
    pub pw: Vec<Time>,
    pub pr: Vec<Time>,
    // Message state, per leg, by message index.
    pub can_o: Vec<Time>,
    pub can_j: Vec<Time>,
    pub can_w: Vec<Time>,
    pub can_r: Vec<Time>,
    pub ttp_o: Vec<Time>,
    pub ttp_j: Vec<Time>,
    pub ttp_w: Vec<Time>,
    pub ttp_r: Vec<Time>,
    pub arrival: Vec<Time>,
    pub backlog: Vec<u64>,
    pub diverged: bool,
    // Config-derived tables, refilled per evaluation.
    pub msg_priority: Vec<Option<mcs_model::Priority>>,
    pub proc_priority: Vec<Option<mcs_model::Priority>>,
    /// CAN-leg message indices sorted by bus priority (most urgent first),
    /// so the RTA's higher-priority sets are array prefixes.
    pub can_order: Vec<usize>,
    /// Position of each CAN-leg message in `can_order` (by message index;
    /// `usize::MAX` for messages without a CAN leg).
    pub can_pos: Vec<usize>,
    /// Suffix-max blocking bound per sorted CAN position: the longest
    /// lower-priority transmission.
    pub can_blocking: Vec<Time>,
    /// Per ET CPU: its processes sorted by priority (most urgent first).
    pub node_order: Vec<Vec<ProcessId>>,
    /// Position of each ET process in its CPU's `node_order` (by process
    /// index; `usize::MAX` for TT processes).
    pub node_pos: Vec<usize>,
    // Delta-evaluation state (see [`crate::delta`]).
    /// The dirty cone of the current evaluation (every entity on the full
    /// path — the full and delta runs are two seedings of one engine).
    pub dirty: DirtySet,
    // Worklist engine state (see [`crate::holistic`]): per-key pending
    // flags and key lists of the current and the next wave.
    pub wl_pending: Vec<bool>,
    pub wl_next_pending: Vec<bool>,
    pub wl_current: Vec<u32>,
    pub wl_next: Vec<u32>,
    // The live kernel input arrays, maintained incrementally by the
    // worklist engine: an entity's entry is refreshed by its own
    // recomputation, so a kernel always reads its peers' latest values.
    pub can_flows: Vec<mcs_can::CanFlow>,
    pub fifo_flows: Vec<crate::queues::FifoFlow>,
    /// Per ET CPU: the rank-ordered task array (transfer process first on
    /// the gateway).
    pub task_arrays: Vec<Vec<TaskFlow>>,
    /// Warm-start hints for the closed-form FIFO bound (raw delays, before
    /// the grid-slack pessimism), indexed like `fifo_flows`.
    pub fifo_warm: Vec<Time>,
    pub bound_flows: Vec<mcs_can::CanFlow>,
    pub bound_delays: Vec<Option<Time>>,
    // Outer fixed point: release lower bounds of the static scheduler,
    // dense by entity index (`None` = no bound). Dense tables compare in
    // O(n) without hashing — the settle test and the schedule memo hit test
    // are plain slice comparisons.
    pub proc_release: Vec<Option<Time>>,
    pub msg_release: Vec<Option<Time>>,
    pub next_proc_release: Vec<Option<Time>>,
    pub next_msg_release: Vec<Option<Time>>,
    // Results of the last run.
    pub queues: QueueBounds,
    pub graph_response: Vec<Time>,
}

impl Scratch {
    /// Allocation-reusing assignment: after the call `self` equals `src`,
    /// but every vector landed in `self`'s existing buffers. Batch lanes
    /// use this to mirror the primary evaluator's converged state before
    /// re-climbing their candidate's divergent tail.
    pub(crate) fn sync_from(&mut self, src: &Scratch) {
        self.po.clone_from(&src.po);
        self.pj.clone_from(&src.pj);
        self.pw.clone_from(&src.pw);
        self.pr.clone_from(&src.pr);
        self.can_o.clone_from(&src.can_o);
        self.can_j.clone_from(&src.can_j);
        self.can_w.clone_from(&src.can_w);
        self.can_r.clone_from(&src.can_r);
        self.ttp_o.clone_from(&src.ttp_o);
        self.ttp_j.clone_from(&src.ttp_j);
        self.ttp_w.clone_from(&src.ttp_w);
        self.ttp_r.clone_from(&src.ttp_r);
        self.arrival.clone_from(&src.arrival);
        self.backlog.clone_from(&src.backlog);
        self.diverged = src.diverged;
        self.msg_priority.clone_from(&src.msg_priority);
        self.proc_priority.clone_from(&src.proc_priority);
        self.can_order.clone_from(&src.can_order);
        self.can_pos.clone_from(&src.can_pos);
        self.can_blocking.clone_from(&src.can_blocking);
        self.node_order.clone_from(&src.node_order);
        self.node_pos.clone_from(&src.node_pos);
        self.dirty.sync_from(&src.dirty);
        self.wl_pending.clone_from(&src.wl_pending);
        self.wl_next_pending.clone_from(&src.wl_next_pending);
        self.wl_current.clone_from(&src.wl_current);
        self.wl_next.clone_from(&src.wl_next);
        self.can_flows.clone_from(&src.can_flows);
        self.fifo_flows.clone_from(&src.fifo_flows);
        self.task_arrays.clone_from(&src.task_arrays);
        self.fifo_warm.clone_from(&src.fifo_warm);
        self.bound_flows.clone_from(&src.bound_flows);
        self.bound_delays.clone_from(&src.bound_delays);
        self.proc_release.clone_from(&src.proc_release);
        self.msg_release.clone_from(&src.msg_release);
        self.next_proc_release.clone_from(&src.next_proc_release);
        self.next_msg_release.clone_from(&src.next_msg_release);
        self.queues.out_can = src.queues.out_can;
        self.queues.out_ttp = src.queues.out_ttp;
        self.queues.out_node.clone_from(&src.queues.out_node);
        self.graph_response.clone_from(&src.graph_response);
    }
}

/// The cheap result of one [`Evaluator::evaluate`] call: the two cost
/// functions of the paper plus convergence metadata. The full
/// [`AnalysisOutcome`] is materialized separately by [`Evaluator::outcome`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EvalSummary {
    /// The degree of schedulability δΓ.
    pub degree: SchedulabilityDegree,
    /// The total buffer need `s_total` in bytes.
    pub total_buffers: u64,
    /// Whether every fixed point converged and the outer iteration settled.
    pub converged: bool,
    /// Outer (schedule ↔ RTA) iterations performed.
    pub iterations: u32,
}

impl EvalSummary {
    /// `true` iff the configuration is schedulable.
    pub fn is_schedulable(&self) -> bool {
        self.degree.is_schedulable()
    }

    /// The δΓ scalar minimized by schedule optimization.
    pub fn schedule_cost(&self) -> i128 {
        self.degree.cost()
    }
}

/// A re-entrant `MultiClusterScheduling` engine bound to one [`System`].
///
/// Build it once, then call [`evaluate`](Evaluator::evaluate) for every
/// configuration ψ a search visits: all system-invariant tables and all
/// fixed-point vectors are reused across calls, making the per-evaluation
/// cost allocation-free outside the static scheduler's hash maps.
///
/// # Examples
///
/// ```
/// use mcs_core::{AnalysisParams, Evaluator};
/// use mcs_model::{
///     Application, Architecture, NodeRole, Priority, PriorityAssignment,
///     System, SystemConfig, TdmaConfig, TdmaSlot, Time,
/// };
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut arch = Architecture::builder();
/// let n1 = arch.add_node("N1", NodeRole::TimeTriggered);
/// let n2 = arch.add_node("N2", NodeRole::EventTriggered);
/// let ng = arch.add_node("NG", NodeRole::Gateway);
/// let arch = arch.build()?;
/// let mut app = Application::builder();
/// let g = app.add_graph("G1", Time::from_millis(240), Time::from_millis(200));
/// let p1 = app.add_process(g, "P1", n1, Time::from_millis(30));
/// let p2 = app.add_process(g, "P2", n2, Time::from_millis(20));
/// app.link(p1, p2, 8);
/// let system = System::new(app.build(&arch)?, arch);
///
/// let tdma = TdmaConfig::new(vec![
///     TdmaSlot { node: ng, capacity_bytes: 8 },
///     TdmaSlot { node: n1, capacity_bytes: 8 },
/// ]);
/// let mut priorities = PriorityAssignment::new();
/// priorities.set_process(p2, Priority::new(1));
/// priorities.set_message(mcs_model::MessageId::new(0), Priority::new(1));
/// let config = SystemConfig::new(tdma, priorities);
///
/// let mut evaluator = Evaluator::new(&system, AnalysisParams::default());
/// let summary = evaluator.evaluate(&config)?;   // cheap: no result maps
/// assert!(summary.is_schedulable());
/// let outcome = evaluator.outcome();            // full tables on demand
/// assert!(outcome.converged);
/// # Ok(())
/// # }
/// ```
pub struct Evaluator<'s> {
    system: &'s System,
    params: AnalysisParams,
    ctx: SystemContext,
    /// Memoized static schedules, one slot per outer iteration. The
    /// schedule is a pure function of (system, TDMA configuration, release
    /// bounds), so re-evaluations that reproduce the same scheduler inputs
    /// — every repeat evaluation, and in local search every move that
    /// leaves β and the analysis-derived releases unchanged — skip the
    /// scheduling pass entirely.
    sched_cache: Vec<SchedCacheEntry>,
    /// Critical-path list priorities (dense); they depend on the TDMA
    /// configuration only through the round duration, so they are memoized
    /// on it.
    sched_priorities: Vec<Time>,
    sched_round: Option<Time>,
    /// The last configuration that passed validation (validation is a pure
    /// function of system + configuration, so an unchanged configuration
    /// skips it). The buffer is kept across invalidations so snapshots
    /// reuse its allocations; `last_validated_ok` gates its validity.
    last_validated: Option<SystemConfig>,
    last_validated_ok: bool,
    scratch: Scratch,
    /// Whether the last `evaluate` completed successfully (gates `outcome`).
    has_run: bool,
    last_converged: bool,
    last_iterations: u32,
    /// Whether the outer schedule↔analysis loop of the last run settled.
    last_settled: bool,
    /// Cache slot holding the schedule of the last completed evaluation.
    last_sched_slot: usize,
    /// Whether the final holistic pass of the last run reached stability
    /// (as opposed to exhausting its iteration cap).
    last_holistic_stable: bool,
    /// Monotone id of evaluation attempts, stamped into analysis snapshots.
    run_counter: u64,
    /// `run_counter` of the last evaluation that completed successfully —
    /// only its snapshots are valid delta baselines.
    last_success_run: u64,
    /// The configuration of that last successful evaluation (the base the
    /// optimizer's accumulated seeds are relative to).
    success_config: Option<SystemConfig>,
    /// Staging buffer for schedule rebuilds on the delta path, so the old
    /// schedule stays diffable until the rebuild lands.
    sched_tmp: TtcSchedule,
    /// Schedule-diff output of the current outer iteration: processes whose
    /// start / messages whose frame placement moved in the rebuild.
    diff_procs: Vec<ProcessId>,
    diff_msgs: Vec<MessageId>,
    /// Whether the last prepared configuration differs from the previous
    /// validated one only by offset pins and/or a per-resource priority
    /// permutation — the precondition of the delta path's no-op probe (all
    /// equation changes stay inside the seed position spans).
    swap_only_change: bool,
    /// Whether any non-structural delta evaluation has been requested:
    /// only then are per-iteration analysis snapshots worth stamping.
    delta_live: bool,
    /// Holistic passes served by a dirty-cone delta / by a full re-analysis.
    delta_evals: u64,
    full_evals: u64,
}

impl<'s> std::fmt::Debug for Evaluator<'s> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Evaluator").finish_non_exhaustive()
    }
}

/// One memoized scheduling pass: the inputs it was computed from, the
/// resulting schedule (reused in place on recompute), and a snapshot of the
/// holistic analysis state the schedule converged to — the baseline the
/// delta path extends at this outer iteration.
#[derive(Default)]
struct SchedCacheEntry {
    valid: bool,
    tdma: mcs_model::TdmaConfig,
    proc_release: Vec<Option<Time>>,
    msg_release: Vec<Option<Time>>,
    schedule: TtcSchedule,
    analysis: AnalysisSnapshot,
    /// Seeds the snapshot is *behind* by: when an intermediate outer
    /// iteration is skipped (its cone touched no release input, so its only
    /// product — the derived releases — was read straight off the
    /// snapshot), the configuration/diff seeds of the skipped evaluation
    /// accumulate here and join the cone of the next delta evaluation that
    /// extends this snapshot. Cleared whenever the slot is re-analyzed.
    pending_seeds: DeltaSeeds,
    pending_moved_procs: Vec<ProcessId>,
    pending_moved_msgs: Vec<MessageId>,
}

impl SchedCacheEntry {
    /// Allocation-reusing assignment (see [`Scratch::sync_from`]).
    fn sync_from(&mut self, src: &SchedCacheEntry) {
        self.valid = src.valid;
        self.tdma.clone_from(&src.tdma);
        self.proc_release.clone_from(&src.proc_release);
        self.msg_release.clone_from(&src.msg_release);
        self.schedule.clone_from(&src.schedule);
        self.analysis.sync_from(&src.analysis);
        self.pending_seeds.clone_from(&src.pending_seeds);
        self.pending_moved_procs
            .clone_from(&src.pending_moved_procs);
        self.pending_moved_msgs.clone_from(&src.pending_moved_msgs);
    }
}

/// The timing state of one holistic analysis, as left in [`Scratch`] after
/// analyzing one outer iteration's schedule. `run` ties the snapshot to the
/// evaluation that produced it: the delta path only extends snapshots
/// stamped by the immediately preceding successful evaluation (whose
/// configuration is the seeds' base).
#[derive(Clone, Debug, Default)]
struct AnalysisSnapshot {
    /// The `run_counter` value of the evaluation that stamped this snapshot
    /// (0 = never stamped / invalidated by a schedule rebuild).
    run: u64,
    /// Whether the holistic pass reached stability (vs the iteration cap) —
    /// only a stable state is a least fixed point a delta run may extend.
    stable: bool,
    /// Whether any kernel diverged (clamped at the horizon).
    diverged: bool,
    po: Vec<Time>,
    pj: Vec<Time>,
    pw: Vec<Time>,
    pr: Vec<Time>,
    can_o: Vec<Time>,
    can_j: Vec<Time>,
    can_w: Vec<Time>,
    can_r: Vec<Time>,
    ttp_o: Vec<Time>,
    ttp_j: Vec<Time>,
    ttp_w: Vec<Time>,
    ttp_r: Vec<Time>,
    arrival: Vec<Time>,
    backlog: Vec<u64>,
    fifo_warm: Vec<Time>,
}

impl AnalysisSnapshot {
    /// Allocation-reusing assignment (see [`Scratch::sync_from`]).
    fn sync_from(&mut self, src: &AnalysisSnapshot) {
        self.run = src.run;
        self.stable = src.stable;
        self.diverged = src.diverged;
        self.po.clone_from(&src.po);
        self.pj.clone_from(&src.pj);
        self.pw.clone_from(&src.pw);
        self.pr.clone_from(&src.pr);
        self.can_o.clone_from(&src.can_o);
        self.can_j.clone_from(&src.can_j);
        self.can_w.clone_from(&src.can_w);
        self.can_r.clone_from(&src.can_r);
        self.ttp_o.clone_from(&src.ttp_o);
        self.ttp_j.clone_from(&src.ttp_j);
        self.ttp_w.clone_from(&src.ttp_w);
        self.ttp_r.clone_from(&src.ttp_r);
        self.arrival.clone_from(&src.arrival);
        self.backlog.clone_from(&src.backlog);
        self.fifo_warm.clone_from(&src.fifo_warm);
    }

    /// Stamps the snapshot from the scratch state (allocation-reusing).
    fn save(&mut self, s: &Scratch, run: u64, stable: bool) {
        self.run = run;
        self.stable = stable;
        self.diverged = s.diverged;
        self.po.clone_from(&s.po);
        self.pj.clone_from(&s.pj);
        self.pw.clone_from(&s.pw);
        self.pr.clone_from(&s.pr);
        self.can_o.clone_from(&s.can_o);
        self.can_j.clone_from(&s.can_j);
        self.can_w.clone_from(&s.can_w);
        self.can_r.clone_from(&s.can_r);
        self.ttp_o.clone_from(&s.ttp_o);
        self.ttp_j.clone_from(&s.ttp_j);
        self.ttp_w.clone_from(&s.ttp_w);
        self.ttp_r.clone_from(&s.ttp_r);
        self.arrival.clone_from(&s.arrival);
        self.backlog.clone_from(&s.backlog);
        self.fifo_warm.clone_from(&s.fifo_warm);
    }

    /// Restores the scratch timing state from the snapshot.
    fn load(&self, s: &mut Scratch) {
        s.diverged = self.diverged;
        s.po.clone_from(&self.po);
        s.pj.clone_from(&self.pj);
        s.pw.clone_from(&self.pw);
        s.pr.clone_from(&self.pr);
        s.can_o.clone_from(&self.can_o);
        s.can_j.clone_from(&self.can_j);
        s.can_w.clone_from(&self.can_w);
        s.can_r.clone_from(&self.can_r);
        s.ttp_o.clone_from(&self.ttp_o);
        s.ttp_j.clone_from(&self.ttp_j);
        s.ttp_w.clone_from(&self.ttp_w);
        s.ttp_r.clone_from(&self.ttp_r);
        s.arrival.clone_from(&self.arrival);
        s.backlog.clone_from(&self.backlog);
        s.fifo_warm.clone_from(&self.fifo_warm);
    }
}

impl<'s> Evaluator<'s> {
    /// Builds the reusable context for `system`.
    pub fn new(system: &'s System, params: AnalysisParams) -> Self {
        let ctx = SystemContext::new(system, &params);
        Evaluator {
            system,
            params,
            ctx,
            sched_cache: Vec::new(),
            sched_priorities: Vec::new(),
            sched_round: None,
            last_validated: None,
            last_validated_ok: false,
            scratch: Scratch::default(),
            has_run: false,
            last_converged: false,
            last_iterations: 0,
            last_settled: false,
            last_sched_slot: 0,
            last_holistic_stable: false,
            run_counter: 0,
            last_success_run: 0,
            success_config: None,
            sched_tmp: TtcSchedule::new(),
            diff_procs: Vec::new(),
            diff_msgs: Vec::new(),
            swap_only_change: false,
            delta_live: false,
            delta_evals: 0,
            full_evals: 0,
        }
    }

    /// The analyzed system.
    pub fn system(&self) -> &'s System {
        self.system
    }

    /// The analysis parameters this evaluator was built with.
    pub fn params(&self) -> &AnalysisParams {
        &self.params
    }

    /// `true` once an evaluation has completed successfully — the timing
    /// accessors and [`outcome`](Evaluator::outcome) are only meaningful
    /// (and only non-panicking) while this holds. A failed
    /// [`evaluate`](Evaluator::evaluate) resets it.
    pub fn has_run(&self) -> bool {
        self.has_run
    }

    /// Runs `MultiClusterScheduling(Γ, β, π)` for one configuration,
    /// reusing every buffer of previous runs, and returns the summary costs.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError`] if ψ is invalid or the TTC traffic cannot
    /// be scheduled; an unschedulable but well-formed configuration is not
    /// an error (its summary has a positive δΓ cost).
    pub fn evaluate(&mut self, config: &SystemConfig) -> Result<EvalSummary, AnalysisError> {
        self.prepare_config(config)?;
        self.evaluate_inner(config, None)
    }

    /// The shared outer schedule↔analysis loop. With `delta_seeds`, every
    /// outer iteration tries to extend the analysis snapshot of the previous
    /// successful evaluation through the restricted dirty-cone passes
    /// instead of re-running the full holistic fixed point: a schedule memo
    /// hit extends the snapshot directly, a rebuild diffs the new schedule
    /// against the snapshot's and feeds the moved placements into the cone.
    /// Iterations whose snapshot is unusable (stale, diverged, unstable),
    /// whose cone exceeds the frontier bound, or whose restricted passes
    /// exhaust their budget take the full path of that iteration — so the
    /// trajectory, and with it every result, is bit-identical either way.
    fn evaluate_inner(
        &mut self,
        config: &SystemConfig,
        delta_seeds: Option<&DeltaSeeds>,
    ) -> Result<EvalSummary, AnalysisError> {
        self.has_run = false;
        self.run_counter += 1;
        let run = self.run_counter;
        let base_run = self.last_success_run;
        let system = self.system;
        let (ttp_queue, grid_slack) = self.ttp_queue(config);
        if self.sched_round != Some(ttp_queue.round) {
            critical_path_priorities_into(system, &config.tdma, &mut self.sched_priorities);
            self.sched_round = Some(ttp_queue.round);
        }

        seed_pins(
            system,
            config,
            &mut self.scratch.proc_release,
            &mut self.scratch.msg_release,
        );

        // Frontier bound: a dirty cone past this size pays the delta
        // bookkeeping without saving kernel work.
        let entity_total = self.ctx.proc_is_tt.len() + 2 * self.ctx.route.len();
        let cone_limit =
            entity_total.saturating_mul(self.params.delta_frontier_percent.min(100) as usize) / 100;

        let mut iterations = 0;
        let mut settled = false;
        let mut holistic_stable = false;
        let mut analyzed: Option<usize> = None;
        // Whether every analyzed iteration extended the delta baseline —
        // only then is the final state snapshot-linked to the previous
        // evaluation's and the per-queue bound memo usable. `extended_slot`
        // tracks *which* iteration's snapshot the scratch currently
        // extends: the identical-schedule shortcut leaves the scratch on an
        // earlier iteration's analysis, which must not pass for the final
        // one.
        let base_final_slot = self.last_sched_slot;
        let mut cone_covers_all = delta_seeds.is_some();
        let mut extended_slot: Option<usize> = None;
        while iterations < self.params.max_outer_iterations {
            let slot = iterations as usize;
            iterations += 1;
            if self.sched_cache.len() <= slot {
                self.sched_cache.push(SchedCacheEntry::default());
            }
            let hit = {
                let entry = &self.sched_cache[slot];
                entry.valid
                    && entry.tdma == config.tdma
                    && entry.proc_release == self.scratch.proc_release
                    && entry.msg_release == self.scratch.msg_release
            };
            self.diff_procs.clear();
            self.diff_msgs.clear();
            if !hit {
                // Can the rebuilt schedule still extend this slot's
                // snapshot? Only if the snapshot is a stable, converged
                // state of the delta base — then the rebuild is staged and
                // diffed, and the moved placements join the dirty cone.
                let diffable = delta_seeds.is_some() && {
                    let entry = &self.sched_cache[slot];
                    entry.valid
                        && entry.analysis.run == base_run
                        && entry.analysis.stable
                        && !entry.analysis.diverged
                };
                let entry = &mut self.sched_cache[slot];
                entry.valid = false;
                let input = DenseSchedulerInput {
                    system,
                    tdma: &config.tdma,
                    process_releases: &self.scratch.proc_release,
                    message_releases: &self.scratch.msg_release,
                };
                if diffable {
                    list_schedule_dense_into(&input, &self.sched_priorities, &mut self.sched_tmp)?;
                    self.sched_tmp.diff_into(
                        &entry.schedule,
                        &mut self.diff_procs,
                        &mut self.diff_msgs,
                    );
                    std::mem::swap(&mut entry.schedule, &mut self.sched_tmp);
                    // The snapshot stays stamped: the diff seeds cover
                    // everything the rebuild moved.
                } else {
                    entry.analysis.run = 0;
                    list_schedule_dense_into(&input, &self.sched_priorities, &mut entry.schedule)?;
                }
                entry.tdma.clone_from(&config.tdma);
                entry.proc_release.clone_from(&self.scratch.proc_release);
                entry.msg_release.clone_from(&self.scratch.msg_release);
                entry.valid = true;
            }
            // The holistic analysis is a pure function of (schedule,
            // configuration): when changed releases produced a schedule
            // identical to the one analyzed in the previous outer iteration
            // of this call, the scratch already holds its fixed point.
            let same_schedule = analyzed
                .map(|prev| self.sched_cache[prev].schedule == self.sched_cache[slot].schedule)
                .unwrap_or(false);
            self.last_sched_slot = slot;
            let mut skipped = false;
            if !same_schedule {
                // Delta baseline: a snapshot stamped by the immediately
                // preceding successful evaluation, converged and stable —
                // exactly the state the dirty cone (joined with whatever
                // the snapshot is pending behind) is a diff against.
                let baseline = delta_seeds.is_some() && {
                    let snap = &self.sched_cache[slot].analysis;
                    snap.run == base_run && snap.stable && !snap.diverged
                };
                let mut ran_delta = false;
                if baseline {
                    let entry = &self.sched_cache[slot];
                    let cone = close_dirty(
                        &self.ctx,
                        &mut self.scratch,
                        &[
                            // mcs-lint: allow(panic-policy) -- `baseline` is only true when delta_seeds.is_some() (checked where it is computed)
                            delta_seeds.expect("baseline implies delta seeds"),
                            &entry.pending_seeds,
                        ],
                        &[
                            (&self.diff_procs, &self.diff_msgs),
                            (&entry.pending_moved_procs, &entry.pending_moved_msgs),
                        ],
                    );
                    // The no-op probe additionally needs the change to be a
                    // per-resource priority permutation (see
                    // `swap_only_change`).
                    self.scratch.dirty.probe_ok &= self.swap_only_change;
                    if cone.entities <= cone_limit {
                        if !cone.feeders && iterations < self.params.max_outer_iterations {
                            // The cone contains no release input, so this
                            // iteration's only product — the derived
                            // release bounds — reads straight off the
                            // snapshot. Unless the loop settles here (then
                            // the final timing state is actually needed),
                            // the whole re-analysis of this iteration is
                            // skipped; its seeds go on the slot's pending
                            // list so the next evaluation's cone still
                            // covers the distance to the snapshot.
                            {
                                let snap = &self.sched_cache[slot].analysis;
                                derive_releases_into(
                                    system,
                                    &self.ctx,
                                    config,
                                    (&snap.arrival, &snap.po, &snap.pr),
                                    &mut self.scratch.next_proc_release,
                                    &mut self.scratch.next_msg_release,
                                );
                            }
                            let s = &self.scratch;
                            let will_settle = s.next_proc_release == s.proc_release
                                && s.next_msg_release == s.msg_release;
                            if !will_settle {
                                // mcs-lint: allow(panic-policy) -- `baseline` is only true when delta_seeds.is_some() (checked where it is computed)
                                let seeds = delta_seeds.expect("baseline implies delta seeds");
                                let entry = &mut self.sched_cache[slot];
                                entry.pending_seeds.merge(seeds);
                                entry
                                    .pending_moved_procs
                                    .extend_from_slice(&self.diff_procs);
                                entry.pending_moved_msgs.extend_from_slice(&self.diff_msgs);
                                let backlog = entry.pending_seeds.processes().len()
                                    + entry.pending_seeds.messages().len()
                                    + entry.pending_moved_procs.len()
                                    + entry.pending_moved_msgs.len();
                                // Unbounded pending growth (a slot skipped
                                // for thousands of evaluations) would make
                                // the closure re-chew an ever-longer seed
                                // list; past a generous bound, retire the
                                // snapshot instead — the next evaluation
                                // re-analyzes the slot and starts afresh.
                                entry.analysis.run =
                                    if backlog > 4 * entity_total { 0 } else { run };
                                skipped = true;
                                self.delta_evals += 1;
                            }
                            // On `will_settle` this is the final iteration:
                            // fall through and materialize its analysis.
                        }
                        if !skipped {
                            self.sched_cache[slot].analysis.load(&mut self.scratch);
                            ran_delta = Holistic {
                                ctx: &self.ctx,
                                system,
                                schedule: &self.sched_cache[slot].schedule,
                                ttp_queue,
                                grid_slack,
                                horizon: self.ctx.horizon,
                                max_iterations: self.params.max_holistic_iterations,
                                fifo_bound: self.params.fifo_bound,
                                s: &mut self.scratch,
                            }
                            .run_delta();
                            // An exhausted pass budget leaves the scratch
                            // mid-climb: the full pass below resets and
                            // re-derives it exactly.
                        }
                    }
                }
                if skipped {
                    // Nothing analyzed: the scratch still holds whatever
                    // iteration was analyzed last.
                } else if ran_delta {
                    holistic_stable = true;
                    extended_slot = Some(slot);
                    self.delta_evals += 1;
                } else {
                    self.full_evals += 1;
                    cone_covers_all = false;
                    holistic_stable = Holistic {
                        ctx: &self.ctx,
                        system,
                        schedule: &self.sched_cache[slot].schedule,
                        ttp_queue,
                        grid_slack,
                        horizon: self.ctx.horizon,
                        max_iterations: self.params.max_holistic_iterations,
                        fifo_bound: self.params.fifo_bound,
                        s: &mut self.scratch,
                    }
                    .run();
                }
            }
            if !skipped {
                analyzed = Some(slot);
                // Snapshots are only consumed by delta evaluations, so pure
                // full-path consumers (one-shot analyses, the structural OS
                // search) skip the copies; once a search has made one
                // non-structural delta call, every evaluation — including
                // interleaved structural moves and full rematerializations —
                // keeps stamping fresh baselines for the next delta call.
                if delta_seeds.is_some() || self.delta_live {
                    let entry = &mut self.sched_cache[slot];
                    entry.analysis.save(&self.scratch, run, holistic_stable);
                    entry.pending_seeds.clear();
                    entry.pending_moved_procs.clear();
                    entry.pending_moved_msgs.clear();
                }
                // Re-derive the release lower bounds from the analysis.
                self.derive_releases(config);
            }
            let s = &mut self.scratch;
            let done = s.next_proc_release == s.proc_release && s.next_msg_release == s.msg_release;
            std::mem::swap(&mut s.proc_release, &mut s.next_proc_release);
            std::mem::swap(&mut s.msg_release, &mut s.next_msg_release);
            if done {
                settled = true;
                break;
            }
        }

        // Queue bounds are needed only for the final analysis state. When
        // the whole trajectory extended the previous evaluation's snapshots
        // and the final state extends the snapshot the cached bounds were
        // computed from, queues without a dirty member provably kept their
        // bounds.
        let queue_delta = cone_covers_all && extended_slot == Some(base_final_slot);
        self.finish_queue_bounds(ttp_queue, grid_slack, queue_delta);
        self.last_settled = settled;
        self.last_holistic_stable = holistic_stable;
        let summary = self.summarize(settled, iterations);
        self.last_success_run = run;
        match &mut self.success_config {
            Some(previous) => previous.clone_from(config),
            slot => *slot = Some(config.clone()),
        }
        Ok(summary)
    }

    /// Incrementally re-evaluates a configuration that differs from the
    /// last successfully evaluated one only in the `seeds` entities,
    /// re-running only the RTA kernels inside the dependency cone of the
    /// change. Results — the summary, every per-entity timing, the queue
    /// bounds and the convergence metadata — are **bit-identical** to a full
    /// [`evaluate`](Evaluator::evaluate) of the same configuration.
    ///
    /// # The delta contract
    ///
    /// `seeds` must over-approximate the difference between `config` and the
    /// configuration of this evaluator's last *successful* evaluation
    /// (search loops accumulate seeds across rejected/reverted moves and
    /// clear them after every successful call). The seeds are closed over
    /// the static dependency graph (the crate-internal `delta` module) and
    /// the outer schedule↔analysis loop replays the evaluation trajectory:
    ///
    /// * an outer iteration whose schedule inputs (TDMA round + release
    ///   bounds) hit the memo **and** whose analysis snapshot was stamped by
    ///   the immediately preceding successful evaluation extends that
    ///   snapshot — clean entities keep their converged fixed-point values,
    ///   dirty entities restart from the bottom of the lattice and re-climb
    ///   against them, reaching the same least fixed point in a fraction of
    ///   the kernel work;
    /// * an iteration whose release bounds changed (the cone touched a FIFO
    ///   arrival or an ET-sent frame's release), whose snapshot is missing,
    ///   diverged or unstable, or whose restricted passes exhaust their
    ///   budget is re-scheduled and re-analyzed in full — from that point
    ///   the replay *is* the full evaluation.
    ///
    /// The call transparently takes the full path outright for structural
    /// seeds (TDMA changes — they alter the FIFO drain parameters every
    /// kernel reads), for priority changes that are not a per-resource
    /// *permutation* of the base assignment (a value moved to a fresh level
    /// perturbs hp sets above its new position, outside the closure's
    /// bands), or when there is no successful evaluation to diff against.
    /// Offset-pin changes need no seeds at all: they act purely through the
    /// release bounds, which the trajectory replay re-derives and re-checks
    /// anyway.
    ///
    /// # Errors
    ///
    /// Exactly as [`evaluate`](Evaluator::evaluate): the same configurations
    /// are invalid on both paths.
    pub fn evaluate_delta(
        &mut self,
        config: &SystemConfig,
        seeds: &DeltaSeeds,
    ) -> Result<EvalSummary, AnalysisError> {
        if !seeds.is_structural() {
            self.delta_live = true;
        }
        if !self.delta_applicable(config, seeds) {
            return self.evaluate(config);
        }
        self.prepare_config(config)?;
        self.evaluate_inner(config, Some(seeds))
    }

    /// How many holistic passes were served by the restricted dirty-cone
    /// analysis vs a full re-analysis, since construction.
    pub fn delta_stats(&self) -> (u64, u64) {
        (self.delta_evals, self.full_evals)
    }

    /// Mirrors every piece of mutable evaluation state from `src`, reusing
    /// `self`'s allocations. Afterwards `self` behaves exactly like `src`:
    /// the next evaluation extends the same snapshots and returns the same
    /// bits the call would return on `src`. (The scheduling staging buffers
    /// `sched_tmp`/`diff_procs`/`diff_msgs` are skipped — they are
    /// overwritten before every read.)
    fn clone_state_from(&mut self, src: &Evaluator<'s>) {
        debug_assert!(std::ptr::eq(self.system, src.system));
        while self.sched_cache.len() < src.sched_cache.len() {
            self.sched_cache.push(SchedCacheEntry::default());
        }
        self.sched_cache.truncate(src.sched_cache.len());
        for (dst, entry) in self.sched_cache.iter_mut().zip(&src.sched_cache) {
            dst.sync_from(entry);
        }
        self.sched_priorities.clone_from(&src.sched_priorities);
        self.sched_round = src.sched_round;
        match (&mut self.last_validated, &src.last_validated) {
            (Some(dst), Some(src_cfg)) => dst.clone_from(src_cfg),
            (dst, src_cfg) => *dst = src_cfg.clone(),
        }
        self.last_validated_ok = src.last_validated_ok;
        self.scratch.sync_from(&src.scratch);
        self.has_run = src.has_run;
        self.last_converged = src.last_converged;
        self.last_iterations = src.last_iterations;
        self.last_settled = src.last_settled;
        self.last_sched_slot = src.last_sched_slot;
        self.last_holistic_stable = src.last_holistic_stable;
        self.run_counter = src.run_counter;
        self.last_success_run = src.last_success_run;
        match (&mut self.success_config, &src.success_config) {
            (Some(dst), Some(src_cfg)) => dst.clone_from(src_cfg),
            (dst, src_cfg) => *dst = src_cfg.clone(),
        }
        self.swap_only_change = src.swap_only_change;
        self.delta_live = src.delta_live;
        self.delta_evals = src.delta_evals;
        self.full_evals = src.full_evals;
    }

    /// Evaluates a whole batch of sibling candidates against this
    /// evaluator's state, data-parallel across the lanes of `scratch`.
    ///
    /// Each request is evaluated exactly as
    /// [`evaluate_delta`](Self::evaluate_delta)`(&req.config, &req.seeds)`
    /// would evaluate it from this evaluator's *current* state (the shared
    /// base): a lane whose candidate passes the delta preconditions mirrors
    /// the base's converged state (the shared prefix, distributed by
    /// allocation-reusing copy) and re-climbs only its own dirty cone (the
    /// divergent tail); any other candidate takes the full fixed point in
    /// its lane. Results come back in request order and are **bit-identical**
    /// to N sequential `evaluate_delta` calls from this base state — see
    /// the [`BatchScratch`] docs for the contract and when batching
    /// degrades to sequential work.
    ///
    /// The primary state is left untouched (only the aggregate
    /// [`delta_stats`](Self::delta_stats) absorb the lanes' holistic-pass
    /// counts), so the accumulated-seed discipline of a search loop carries
    /// over unchanged: every request's seeds are relative to the same base.
    /// Use [`adopt_lane`](Self::adopt_lane) to step onto an accepted
    /// candidate.
    ///
    /// Infeasible candidates are not an error of the batch: their lane
    /// reports its [`AnalysisError`] in the returned vector, exactly as the
    /// sequential call would.
    pub fn evaluate_batch(
        &mut self,
        scratch: &mut BatchScratch<'s>,
        requests: &[BatchRequest],
    ) -> Vec<Result<EvalSummary, AnalysisError>> {
        scratch.live = 0;
        if requests.is_empty() {
            return Vec::new();
        }
        // A scratch carried over from another system: rebuild the lanes.
        if scratch
            .lanes
            .first()
            .is_some_and(|lane| !std::ptr::eq(lane.eval.system, self.system))
        {
            scratch.lanes.clear();
        }
        while scratch.lanes.len() < requests.len() {
            scratch.lanes.push(Lane {
                eval: Evaluator::new(self.system, self.params),
                result: None,
                stats_gain: (0, 0),
            });
        }
        // Mirror `evaluate_delta`'s latch on the primary: once a search
        // issues non-structural delta work, every primary evaluation keeps
        // stamping snapshot baselines for the next delta call.
        if requests.iter().any(|r| !r.seeds.is_structural()) {
            self.delta_live = true;
        }
        // Plan on the shared base *before* the lanes run: applicability is
        // a property of (base state, candidate), identical for every lane.
        let plans: Vec<bool> = requests
            .iter()
            .map(|r| self.delta_applicable(&r.config, &r.seeds))
            .collect();
        let primary: &Evaluator<'s> = self;
        scratch.lanes[..requests.len()]
            .par_iter_mut()
            .enumerate()
            .for_each(|(i, lane)| {
                let req = &requests[i];
                if plans[i] {
                    // The sync overwrites the lane's pass counters with the
                    // primary aggregate, so the baseline is read after it.
                    lane.eval.clone_state_from(primary);
                } else if !req.seeds.is_structural() {
                    // Full path: no base state needed — but keep the
                    // delta-live latch consistent with the sequential call.
                    lane.eval.delta_live = true;
                }
                let (d0, f0) = lane.eval.delta_stats();
                let result = if plans[i] {
                    lane.eval.evaluate_delta(&req.config, &req.seeds)
                } else {
                    lane.eval.evaluate(&req.config)
                };
                let (d1, f1) = lane.eval.delta_stats();
                lane.stats_gain = (d1 - d0, f1 - f0);
                lane.result = Some(result);
            });
        scratch.live = requests.len();
        let mut results = Vec::with_capacity(requests.len());
        for lane in &scratch.lanes[..requests.len()] {
            self.delta_evals += lane.stats_gain.0;
            self.full_evals += lane.stats_gain.1;
            // mcs-lint: allow(panic-policy) -- the par loop above stored a result into every lane of ..requests.len()
            results.push(lane.result.clone().expect("every live lane evaluated"));
        }
        results
    }

    /// Makes lane `index` of the last [`evaluate_batch`](Self::evaluate_batch)
    /// the primary state: after the call this evaluator holds exactly the
    /// state a sequential [`evaluate_delta`](Self::evaluate_delta) of that
    /// candidate would have left behind — its snapshots are the delta
    /// baseline of the next call, its configuration is the accumulated
    /// seeds' new base, and [`outcome`](Self::outcome) materializes the
    /// candidate's result maps. O(1): the two states are swapped, not
    /// copied (the lane inherits the old primary state and is re-synced by
    /// the next batch).
    ///
    /// # Panics
    ///
    /// Panics if `index` is outside the last batch or the lane's evaluation
    /// failed (an invalid candidate leaves no state worth adopting).
    pub fn adopt_lane(&mut self, scratch: &mut BatchScratch<'s>, index: usize) {
        assert!(
            index < scratch.live,
            "adopt_lane: lane {index} is not part of the last batch"
        );
        let lane = &mut scratch.lanes[index];
        assert!(
            matches!(lane.result, Some(Ok(_))),
            "adopt_lane: lane {index} holds no successful evaluation"
        );
        std::mem::swap(self, &mut lane.eval);
        // The batch already folded every lane's holistic-pass gains into
        // the primary aggregate; keep that aggregate on the primary.
        std::mem::swap(&mut self.delta_evals, &mut lane.eval.delta_evals);
        std::mem::swap(&mut self.full_evals, &mut lane.eval.full_evals);
    }

    /// Whether the delta preconditions hold for `config`: non-structural
    /// seeds, an unchanged TDMA round, and a priority assignment that is a
    /// per-resource *permutation* of the last successful evaluation's (the
    /// seeds' base). The permutation requirement is what licenses the
    /// priority-band closure of [`crate::delta`]: a priority moved to a
    /// fresh level would change hp sets *above* its new position, outside
    /// the marked bands.
    fn delta_applicable(&self, config: &SystemConfig, seeds: &DeltaSeeds) -> bool {
        if seeds.is_structural() {
            return false;
        }
        match &self.success_config {
            Some(prev) => {
                prev.tdma == config.tdma && self.priority_change_is_permutation(prev, config)
            }
            None => false,
        }
    }

    /// Validates ψ and (re)builds the configuration-derived tables when the
    /// configuration changed since the last successful validation.
    ///
    /// Validation and every configuration-derived table are pure functions
    /// of (system, configuration): an unchanged configuration skips both.
    fn prepare_config(&mut self, config: &SystemConfig) -> Result<(), AnalysisError> {
        let config_changed =
            !self.last_validated_ok || self.last_validated.as_ref() != Some(config);
        if !config_changed {
            self.swap_only_change = true;
            return Ok(());
        }
        self.swap_only_change = false;
        // Pins-only change: validation never reads the offset pins, and
        // every configuration-derived table depends on β and π only — an
        // unchanged TDMA round + priority assignment keeps both.
        if self.last_validated_ok {
            if let Some(prev) = &self.last_validated {
                if prev.tdma == config.tdma && prev.priorities == config.priorities {
                    self.swap_only_change = true;
                    match &mut self.last_validated {
                        Some(previous) => previous.clone_from(config),
                        slot => *slot = Some(config.clone()),
                    }
                    return Ok(());
                }
            }
        }
        // A priority change that merely *permutes* the previous (validated)
        // assignment within each resource preserves validity outright:
        // completeness (every changed ET process / CAN message keeps a
        // priority) and per-resource uniqueness (the value multiset per
        // CPU/bus is unchanged) are checked exactly, so re-validation would
        // be a no-op. Anything else re-validates in full.
        let skip_validation = self.last_validated_ok
            && self
                .last_validated
                .as_ref()
                .map(|prev| {
                    prev.tdma == config.tdma && self.priority_change_is_permutation(prev, config)
                })
                .unwrap_or(false);
        self.last_validated_ok = false;
        self.swap_only_change = skip_validation;
        if !skip_validation {
            validate_config(self.system, config)?;
        }
        let app = &self.system.application;

        // Configuration-derived tables: the priority lookups flattened
        // to dense vectors, the priority-sorted evaluation orders
        // (priorities are unique per resource, so the orders are total),
        // their inverse position tables (the delta closure reads priority
        // bands from them) and the CAN suffix-max blocking bounds — these
        // turn every kernel's higher-priority filtering into prefix scans.
        let s = &mut self.scratch;
        s.msg_priority.clear();
        s.msg_priority.extend(
            app.messages()
                .iter()
                .map(|m| config.priorities.message(m.id())),
        );
        s.proc_priority.clear();
        s.proc_priority.extend(
            app.processes()
                .iter()
                .map(|p| config.priorities.process(p.id())),
        );
        s.can_order.clear();
        s.can_order.extend(self.ctx.can_ids.iter().copied());
        s.can_order.sort_by_key(|&mi| {
            // mcs-lint: allow(panic-policy) -- validate_config at the top of this refresh guarantees CAN priorities
            s.msg_priority[mi].expect("validated configuration assigns CAN priorities")
        });
        s.can_pos.clear();
        s.can_pos.resize(s.msg_priority.len(), usize::MAX);
        for (k, &mi) in s.can_order.iter().enumerate() {
            s.can_pos[mi] = k;
        }
        s.can_blocking.clear();
        s.can_blocking.resize(s.can_order.len(), Time::ZERO);
        let mut suffix = Time::ZERO;
        for k in (0..s.can_order.len()).rev() {
            s.can_blocking[k] = suffix;
            suffix = suffix.max(self.ctx.can_c[s.can_order[k]]);
        }
        s.node_order.resize(self.ctx.et_nodes.len(), Vec::new());
        s.node_pos.clear();
        s.node_pos.resize(s.proc_priority.len(), usize::MAX);
        for (ni, et) in self.ctx.et_nodes.iter().enumerate() {
            let order = &mut s.node_order[ni];
            order.clear();
            order.extend(et.procs.iter().copied());
            order.sort_by_key(|p| {
                // mcs-lint: allow(panic-policy) -- validate_config at the top of this refresh guarantees ET priorities
                s.proc_priority[p.index()].expect("validated configuration assigns ET priorities")
            });
            for (idx, p) in order.iter().enumerate() {
                s.node_pos[p.index()] = idx;
            }
        }
        // `clone_from` reuses the previous snapshot's allocations, so
        // a changed configuration costs no fresh allocation here.
        match &mut self.last_validated {
            Some(previous) => previous.clone_from(config),
            slot => *slot = Some(config.clone()),
        }
        self.last_validated_ok = true;
        Ok(())
    }

    /// Exact validity-preservation check: the new priority assignment is a
    /// per-resource permutation of the previous one — every changed ET
    /// process and CAN-leg message keeps a priority, and the changed values
    /// permute within their CPU / the bus (multiset equality), so
    /// per-resource uniqueness is preserved. Changes to priorities the
    /// validator never reads (TT processes, messages without a CAN leg) are
    /// ignored.
    fn priority_change_is_permutation(&self, prev: &SystemConfig, next: &SystemConfig) -> bool {
        let app = &self.system.application;
        // (resource group, priority level) of every changed, validated slot.
        let mut old_vals: Vec<(u32, u32)> = Vec::new();
        let mut new_vals: Vec<(u32, u32)> = Vec::new();
        for m in app.messages() {
            let o = prev.priorities.message(m.id());
            let n = next.priorities.message(m.id());
            if o == n || !self.ctx.route[m.id().index()].uses_can() {
                continue;
            }
            let (Some(o), Some(n)) = (o, n) else {
                return false;
            };
            old_vals.push((u32::MAX, o.level()));
            new_vals.push((u32::MAX, n.level()));
        }
        for p in app.processes() {
            let o = prev.priorities.process(p.id());
            let n = next.priorities.process(p.id());
            if o == n || self.ctx.proc_is_tt[p.id().index()] {
                continue;
            }
            let (Some(o), Some(n)) = (o, n) else {
                return false;
            };
            let node = p.node().raw();
            old_vals.push((node, o.level()));
            new_vals.push((node, n.level()));
        }
        old_vals.sort_unstable();
        new_vals.sort_unstable();
        old_vals == new_vals
    }

    /// The gateway-slot FIFO parameters and the TDMA grid slack of ψ.
    fn ttp_queue(&self, config: &SystemConfig) -> (TtpQueueParams, Time) {
        let arch = &self.system.architecture;
        let app = &self.system.application;
        let gateway = arch.gateway();
        let (gw_slot, gw_cfg) = config
            .tdma
            .slot_of_node(gateway)
            // mcs-lint: allow(panic-policy) -- tdma.validate (run by validate_config before analysis) requires a slot per TTP node
            .expect("validated configuration has a gateway slot");
        let ttp_params = arch.ttp_params();
        let ttp_queue = TtpQueueParams {
            round: config.tdma.round_duration(&ttp_params),
            slot_offset: config.tdma.slot_offset(gw_slot, &ttp_params),
            slot_capacity: gw_cfg.capacity_bytes,
            slot_duration: config.tdma.slot_duration(gw_slot, &ttp_params),
        };
        let grid_slack =
            if ttp_queue.round.is_zero() || (app.hyperperiod() % ttp_queue.round).is_zero() {
                Time::ZERO
            } else {
                ttp_queue.round
            };
        (ttp_queue, grid_slack)
    }

    /// Re-derives the release lower bounds of the static scheduler from the
    /// current analysis state, into the `next_*` tables.
    fn derive_releases(&mut self, config: &SystemConfig) {
        let system = self.system;
        let ctx = &self.ctx;
        let s = &mut self.scratch;
        derive_releases_into(
            system,
            ctx,
            config,
            (&s.arrival, &s.po, &s.pr),
            &mut s.next_proc_release,
            &mut s.next_msg_release,
        );
    }

    /// Computes the queue bounds of the final analysis state.
    fn finish_queue_bounds(&mut self, ttp_queue: TtpQueueParams, grid_slack: Time, delta: bool) {
        let mut holistic = Holistic {
            ctx: &self.ctx,
            system: self.system,
            schedule: &self.sched_cache[self.last_sched_slot].schedule,
            ttp_queue,
            grid_slack,
            horizon: self.ctx.horizon,
            max_iterations: self.params.max_holistic_iterations,
            fifo_bound: self.params.fifo_bound,
            s: &mut self.scratch,
        };
        if delta {
            holistic.queue_bounds_delta();
        } else {
            holistic.queue_bounds();
        }
    }

    /// Graph responses and the degree of schedulability, straight from the
    /// scratch vectors (no result maps on this path), plus the run metadata.
    fn summarize(&mut self, settled: bool, iterations: u32) -> EvalSummary {
        let system = self.system;
        let app = &system.application;
        let ctx = &self.ctx;
        let s = &mut self.scratch;
        s.graph_response.clear();
        let mut overrun: u64 = 0;
        let mut slack: i128 = 0;
        for (gi, graph) in app.graphs().iter().enumerate() {
            let r = ctx.sinks[gi]
                .iter()
                .map(|p| s.po[p.index()].saturating_add(s.pr[p.index()]))
                .fold(Time::ZERO, Time::max);
            s.graph_response.push(r);
            let d = graph.deadline();
            overrun += r.saturating_sub(d).ticks();
            slack += i128::from(r.ticks()) - i128::from(d.ticks());
        }
        for &(pi, d) in &ctx.local_deadlines {
            let completion = s.po[pi].saturating_add(s.pr[pi]);
            overrun += completion.saturating_sub(d).ticks();
        }

        let converged = !s.diverged && settled;
        self.has_run = true;
        self.last_converged = converged;
        self.last_iterations = iterations;
        EvalSummary {
            degree: SchedulabilityDegree {
                overrun,
                slack,
                converged,
            },
            total_buffers: s.queues.total(),
            converged,
            iterations,
        }
    }

    /// Materializes the full [`AnalysisOutcome`] of the last successful
    /// [`evaluate`](Evaluator::evaluate) call (this allocates the result
    /// maps — call it for accepted configurations, not per search move).
    ///
    /// # Panics
    ///
    /// Panics if no evaluation has completed successfully yet.
    pub fn outcome(&self) -> AnalysisOutcome {
        assert!(
            self.has_run,
            "Evaluator::outcome called before a successful evaluate"
        );
        let app = &self.system.application;
        let s = &self.scratch;
        let process_timing: HashMap<ProcessId, EntityTiming> = app
            .processes()
            .iter()
            .map(|p| (p.id(), self.process_timing(p.id())))
            .collect();
        let message_timing: HashMap<MessageId, MessageTiming> = app
            .messages()
            .iter()
            .map(|m| (m.id(), self.message_timing(m.id())))
            .collect();
        let graph_response = app
            .graphs()
            .iter()
            .enumerate()
            .map(|(gi, g)| (g.id(), s.graph_response[gi]))
            .collect();
        AnalysisOutcome {
            schedule: self.sched_cache[self.last_sched_slot].schedule.clone(),
            process_timing,
            message_timing,
            queues: s.queues.clone(),
            graph_response,
            converged: self.last_converged,
            iterations: self.last_iterations,
        }
    }

    /// Worst-case timing of one process from the last evaluation.
    ///
    /// # Panics
    ///
    /// Panics if no evaluation has completed successfully yet.
    pub fn process_timing(&self, process: ProcessId) -> EntityTiming {
        assert!(self.has_run, "no successful evaluation yet");
        let i = process.index();
        let s = &self.scratch;
        EntityTiming {
            offset: s.po[i],
            jitter: s.pj[i],
            delay: s.pw[i],
            response: s.pr[i],
        }
    }

    /// Worst-case per-leg timing of one message from the last evaluation.
    ///
    /// # Panics
    ///
    /// Panics if no evaluation has completed successfully yet.
    pub fn message_timing(&self, message: MessageId) -> MessageTiming {
        assert!(self.has_run, "no successful evaluation yet");
        let mi = message.index();
        let s = &self.scratch;
        let can = self.ctx.route[mi].uses_can().then_some(EntityTiming {
            offset: s.can_o[mi],
            jitter: s.can_j[mi],
            delay: s.can_w[mi],
            response: s.can_r[mi],
        });
        let ttp = matches!(self.ctx.route[mi], MessageRoute::EtcToTtc).then_some(EntityTiming {
            offset: s.ttp_o[mi],
            jitter: s.ttp_j[mi],
            delay: s.ttp_w[mi],
            response: s.ttp_r[mi],
        });
        MessageTiming {
            can,
            ttp,
            arrival: s.arrival[mi],
        }
    }
}

#[cfg(test)]
impl Evaluator<'_> {
    /// Test hook for the delta closure: stages the configuration-derived
    /// tables and closes `seed_sets` plus `moved` placements over the
    /// dependency graph, leaving the flags in the scratch and returning the
    /// cone summary.
    pub(crate) fn close_for_test(
        &mut self,
        config: &SystemConfig,
        seed_sets: &[&DeltaSeeds],
        moved: &[(&[ProcessId], &[MessageId])],
    ) -> crate::delta::DirtyCone {
        self.prepare_config(config)
            .expect("valid test configuration");
        close_dirty(&self.ctx, &mut self.scratch, seed_sets, moved)
    }

    /// Test hook: the dirty flags left by [`close_for_test`].
    ///
    /// [`close_for_test`]: Evaluator::close_for_test
    pub(crate) fn dirty_for_test(&self) -> &DirtySet {
        &self.scratch.dirty
    }
}

/// Re-derives the release lower bounds of the static scheduler from an
/// analysis state given as `(arrival, po, pr)` slices — the scratch vectors
/// after a holistic run, or an iteration's snapshot when the delta path
/// skips re-analyzing an intermediate iteration whose release inputs are
/// provably unchanged.
fn derive_releases_into(
    system: &System,
    ctx: &SystemContext,
    config: &SystemConfig,
    (arrival, po, pr): (&[Time], &[Time], &[Time]),
    next_proc_release: &mut Vec<Option<Time>>,
    next_msg_release: &mut Vec<Option<Time>>,
) {
    let app = &system.application;
    seed_pins(system, config, next_proc_release, next_msg_release);
    for &mi in &ctx.fifo_ids {
        // Destination TT process must not start before the worst-case
        // arrival through Out_TTP.
        let message = &app.messages()[mi];
        let bound = arrival[mi].min(ctx.horizon);
        let entry = &mut next_proc_release[message.dest().index()];
        *entry = Some(entry.unwrap_or(Time::ZERO).max(bound));
    }
    for &mi in &ctx.et_ttp_senders {
        // TTP frames whose sender runs under priorities (gateway CPU): the
        // frame cannot leave before the sender's worst-case completion.
        let message = &app.messages()[mi];
        let sender = message.source().index();
        let done = po[sender].saturating_add(pr[sender]).min(ctx.horizon);
        let entry = &mut next_msg_release[message.id().index()];
        *entry = Some(entry.unwrap_or(Time::ZERO).max(done));
    }
}

/// Applies the optimizer's offset pins as baseline releases (dense tables;
/// `None` distinguishes "no bound" from an explicit zero pin).
fn seed_pins(
    system: &System,
    config: &SystemConfig,
    process_releases: &mut Vec<Option<Time>>,
    message_releases: &mut Vec<Option<Time>>,
) {
    let app = &system.application;
    process_releases.clear();
    process_releases.resize(app.processes().len(), None);
    message_releases.clear();
    message_releases.resize(app.messages().len(), None);
    if config.offsets.is_empty() {
        return;
    }
    for p in app.processes() {
        if let Some(t) = config.offsets.process(p.id()) {
            process_releases[p.id().index()] = Some(t);
        }
    }
    for m in app.messages() {
        if let Some(t) = config.offsets.message(m.id()) {
            message_releases[m.id().index()] = Some(t);
        }
    }
}
