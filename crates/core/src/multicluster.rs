//! The `MultiClusterScheduling` algorithm (paper §4, Figure 5): the outer
//! fixed point between static scheduling of the TTC and response-time
//! analysis of the ETC.
//!
//! The circular dependency — TTC offsets influence ETC response times, which
//! bound the arrival of inter-cluster traffic, which constrains the TTC
//! schedule tables — is resolved iteratively:
//!
//! 1. build a static schedule ignoring ETC influence;
//! 2. run the holistic ETC analysis against it;
//! 3. re-derive the release lower bounds of TT processes (worst-case arrival
//!    of their inbound ETC messages) and re-schedule;
//! 4. repeat until the offsets stop changing.

use std::collections::HashMap;

use mcs_model::{
    ConfigError, MessageId, MessageRoute, ProcessId, System, SystemConfig, Time,
};
use mcs_ttp::{list_schedule, ScheduleError, SchedulerInput};

use crate::holistic::Holistic;
use crate::outcome::AnalysisOutcome;
use crate::validate::validate_config;

/// How the `Out_TTP` FIFO delay is bounded.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FifoBound {
    /// The paper's closed form:
    /// `w = B + ⌈(S_m + I_m)/S_G⌉·T_TDMA` with
    /// `B = T_TDMA − (O_m mod T_TDMA) + O_SG`. Simple but pessimistic when
    /// the enqueue jitter spans several rounds.
    PaperClosedForm,
    /// Occurrence-based: the frame leaves in the `⌈(S_m + I_m)/S_G⌉`-th
    /// gateway-slot occurrence starting after the worst-case enqueue instant
    /// `O_m + J_m`. Tighter and still safe under the round-robin drain of
    /// the FIFO. This is the default.
    #[default]
    SlotOccurrence,
}

/// Tuning knobs of the analysis.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AnalysisParams {
    /// The divergence horizon as a multiple of the hyper-period: a fixed
    /// point exceeding `horizon_factor × hyperperiod` is declared diverged
    /// and clamped.
    pub horizon_factor: u64,
    /// Cap on inner (holistic) iterations per schedule.
    pub max_holistic_iterations: u32,
    /// Cap on outer (schedule ↔ analysis) iterations.
    pub max_outer_iterations: u32,
    /// Bound used for the gateway `Out_TTP` FIFO.
    pub fifo_bound: FifoBound,
}

impl Default for AnalysisParams {
    fn default() -> Self {
        AnalysisParams {
            horizon_factor: 8,
            max_holistic_iterations: 64,
            max_outer_iterations: 16,
            fifo_bound: FifoBound::default(),
        }
    }
}

/// Error running the multi-cluster analysis.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum AnalysisError {
    /// The configuration ψ is structurally invalid for this system.
    Config(ConfigError),
    /// The static scheduler could not place the TTC traffic.
    Schedule(ScheduleError),
}

impl std::fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnalysisError::Config(e) => write!(f, "invalid configuration: {e}"),
            AnalysisError::Schedule(e) => write!(f, "static scheduling failed: {e}"),
        }
    }
}

impl std::error::Error for AnalysisError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AnalysisError::Config(e) => Some(e),
            AnalysisError::Schedule(e) => Some(e),
        }
    }
}

impl From<ConfigError> for AnalysisError {
    fn from(e: ConfigError) -> Self {
        AnalysisError::Config(e)
    }
}

impl From<ScheduleError> for AnalysisError {
    fn from(e: ScheduleError) -> Self {
        AnalysisError::Schedule(e)
    }
}

/// Runs `MultiClusterScheduling(Γ, β, π)` and returns the offsets φ,
/// response times ρ, queue bounds and graph response times.
///
/// # Errors
///
/// Returns [`AnalysisError`] if ψ is invalid or the TTC traffic cannot be
/// scheduled at all. An *unschedulable but well-formed* system is **not** an
/// error: it yields an outcome whose graph response times exceed their
/// deadlines (see [`crate::degree_of_schedulability`]).
///
/// # Examples
///
/// See the crate-level documentation of [`mcs-core`](crate) for a complete
/// worked example.
pub fn multi_cluster_scheduling(
    system: &System,
    config: &SystemConfig,
    params: &AnalysisParams,
) -> Result<AnalysisOutcome, AnalysisError> {
    validate_config(system, config)?;
    let app = &system.application;
    let horizon = app
        .hyperperiod()
        .saturating_mul(params.horizon_factor.max(1));

    let mut process_releases: HashMap<ProcessId, Time> = HashMap::new();
    let mut message_releases: HashMap<MessageId, Time> = HashMap::new();
    seed_pins(system, config, &mut process_releases, &mut message_releases);

    let mut iterations = 0;
    let mut settled = false;
    let mut last = None;
    while iterations < params.max_outer_iterations {
        iterations += 1;
        let input = SchedulerInput {
            system,
            tdma: &config.tdma,
            process_releases: &process_releases,
            message_releases: &message_releases,
        };
        let schedule = list_schedule(&input)?;
        let holistic = Holistic::new(
            system,
            config,
            &schedule,
            horizon,
            params.max_holistic_iterations,
            params.fifo_bound,
        )
        .run();

        // Re-derive releases from the analysis.
        let mut next_p = HashMap::new();
        let mut next_m = HashMap::new();
        seed_pins(system, config, &mut next_p, &mut next_m);
        for message in app.messages() {
            let mi = message.id().index();
            match system.route(message.id()) {
                MessageRoute::EtcToTtc => {
                    // Destination TT process must not start before the
                    // worst-case arrival through Out_TTP.
                    let arrival = holistic.message[mi].arrival.min(horizon);
                    let entry = next_p.entry(message.dest()).or_insert(Time::ZERO);
                    *entry = (*entry).max(arrival);
                }
                route if route.uses_ttp() => {
                    // TTP frames whose sender runs under priorities (gateway
                    // CPU): the frame cannot leave before the sender's
                    // worst-case completion.
                    let sender = message.source();
                    if system
                        .architecture
                        .is_et_cpu(app.process(sender).node())
                    {
                        let done = holistic.process[sender.index()]
                            .worst_completion()
                            .min(horizon);
                        let entry = next_m.entry(message.id()).or_insert(Time::ZERO);
                        *entry = (*entry).max(done);
                    }
                }
                _ => {}
            }
        }

        let done = next_p == process_releases && next_m == message_releases;
        process_releases = next_p;
        message_releases = next_m;
        last = Some((schedule, holistic));
        if done {
            settled = true;
            break;
        }
    }

    let (schedule, holistic) = last.expect("at least one outer iteration runs");
    let mut graph_response = HashMap::new();
    for graph in app.graphs() {
        let r = app
            .sinks(graph.id())
            .into_iter()
            .map(|p| holistic.process[p.index()].worst_completion())
            .fold(Time::ZERO, Time::max);
        graph_response.insert(graph.id(), r);
    }

    let process_timing = app
        .processes()
        .iter()
        .map(|p| (p.id(), holistic.process[p.id().index()]))
        .collect();
    let message_timing = app
        .messages()
        .iter()
        .map(|m| (m.id(), holistic.message[m.id().index()]))
        .collect();

    Ok(AnalysisOutcome {
        schedule,
        process_timing,
        message_timing,
        queues: holistic.queues,
        graph_response,
        converged: holistic.converged && settled,
        iterations,
    })
}

/// Applies the optimizer's offset pins as baseline releases.
fn seed_pins(
    system: &System,
    config: &SystemConfig,
    process_releases: &mut HashMap<ProcessId, Time>,
    message_releases: &mut HashMap<MessageId, Time>,
) {
    for p in system.application.processes() {
        if let Some(t) = config.offsets.process(p.id()) {
            process_releases.insert(p.id(), t);
        }
    }
    for m in system.application.messages() {
        if let Some(t) = config.offsets.message(m.id()) {
            message_releases.insert(m.id(), t);
        }
    }
}
