//! The `MultiClusterScheduling` algorithm (paper §4, Figure 5): the outer
//! fixed point between static scheduling of the TTC and response-time
//! analysis of the ETC.
//!
//! The circular dependency — TTC offsets influence ETC response times, which
//! bound the arrival of inter-cluster traffic, which constrains the TTC
//! schedule tables — is resolved iteratively:
//!
//! 1. build a static schedule ignoring ETC influence;
//! 2. run the holistic ETC analysis against it;
//! 3. re-derive the release lower bounds of TT processes (worst-case arrival
//!    of their inbound ETC messages) and re-schedule;
//! 4. repeat until the offsets stop changing.
//!
//! The fixed point itself lives in [`crate::Evaluator`], which reuses all
//! derived tables and scratch state across evaluations of the same system;
//! [`multi_cluster_scheduling`] is the one-shot convenience wrapper.

use mcs_model::{ConfigError, System, SystemConfig};
use mcs_ttp::ScheduleError;

use crate::context::Evaluator;
use crate::outcome::AnalysisOutcome;

/// How the `Out_TTP` FIFO delay is bounded.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FifoBound {
    /// The paper's closed form:
    /// `w = B + ⌈(S_m + I_m)/S_G⌉·T_TDMA` with
    /// `B = T_TDMA − (O_m mod T_TDMA) + O_SG`. Simple but pessimistic when
    /// the enqueue jitter spans several rounds.
    PaperClosedForm,
    /// Occurrence-based: the frame leaves in the `⌈(S_m + I_m)/S_G⌉`-th
    /// gateway-slot occurrence starting after the worst-case enqueue instant
    /// `O_m + J_m`. Tighter and still safe under the round-robin drain of
    /// the FIFO. This is the default.
    #[default]
    SlotOccurrence,
}

/// Tuning knobs of the analysis.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AnalysisParams {
    /// The divergence horizon as a multiple of the hyper-period: a fixed
    /// point exceeding `horizon_factor × hyperperiod` is declared diverged
    /// and clamped.
    pub horizon_factor: u64,
    /// Cap on inner (holistic) iterations per schedule.
    pub max_holistic_iterations: u32,
    /// Cap on outer (schedule ↔ analysis) iterations.
    pub max_outer_iterations: u32,
    /// Bound used for the gateway `Out_TTP` FIFO.
    pub fifo_bound: FifoBound,
    /// Frontier bound of delta evaluation, in percent of all analyzed
    /// entities (processes + both message legs):
    /// [`Evaluator::evaluate_delta`](crate::Evaluator::evaluate_delta) falls
    /// back to the full fixed point when the closed dirty cone grows past
    /// this fraction — a near-total cone pays the delta bookkeeping without
    /// saving kernel work. `100` disables the bound, `0` disables the delta
    /// path.
    pub delta_frontier_percent: u32,
}

impl Default for AnalysisParams {
    fn default() -> Self {
        AnalysisParams {
            horizon_factor: 8,
            max_holistic_iterations: 64,
            max_outer_iterations: 16,
            fifo_bound: FifoBound::default(),
            delta_frontier_percent: 75,
        }
    }
}

/// Error running the multi-cluster analysis.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum AnalysisError {
    /// The configuration ψ is structurally invalid for this system.
    Config(ConfigError),
    /// The static scheduler could not place the TTC traffic.
    Schedule(ScheduleError),
}

impl std::fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnalysisError::Config(e) => write!(f, "invalid configuration: {e}"),
            AnalysisError::Schedule(e) => write!(f, "static scheduling failed: {e}"),
        }
    }
}

impl std::error::Error for AnalysisError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AnalysisError::Config(e) => Some(e),
            AnalysisError::Schedule(e) => Some(e),
        }
    }
}

impl From<ConfigError> for AnalysisError {
    fn from(e: ConfigError) -> Self {
        AnalysisError::Config(e)
    }
}

impl From<ScheduleError> for AnalysisError {
    fn from(e: ScheduleError) -> Self {
        AnalysisError::Schedule(e)
    }
}

/// Runs `MultiClusterScheduling(Γ, β, π)` and returns the offsets φ,
/// response times ρ, queue bounds and graph response times.
///
/// This builds a fresh [`Evaluator`] per call; code evaluating many
/// configurations of the *same* system should construct one `Evaluator` and
/// reuse it — that path reuses all derived tables and fixed-point state
/// between runs and is several times faster.
///
/// # Errors
///
/// Returns [`AnalysisError`] if ψ is invalid or the TTC traffic cannot be
/// scheduled at all. An *unschedulable but well-formed* system is **not** an
/// error: it yields an outcome whose graph response times exceed their
/// deadlines (see [`crate::degree_of_schedulability`]).
///
/// # Examples
///
/// See the crate-level documentation of [`mcs-core`](crate) for a complete
/// worked example.
pub fn multi_cluster_scheduling(
    system: &System,
    config: &SystemConfig,
    params: &AnalysisParams,
) -> Result<AnalysisOutcome, AnalysisError> {
    let mut evaluator = Evaluator::new(system, *params);
    evaluator.evaluate(config)?;
    Ok(evaluator.outcome())
}
