//! Batch candidate evaluation — N sibling configurations analyzed in one
//! data-parallel pass ([`Evaluator::evaluate_batch`]).
//!
//! # The shared-prefix / divergent-tail model
//!
//! Search loops fan out *sibling* candidates: N configurations that each
//! differ from one common base by a single move. Their delta cones share
//! almost everything — the base's converged fixed point — and diverge only
//! in the per-candidate dirty tail. The batch evaluator exploits exactly
//! that split:
//!
//! 1. **Shared prefix, once.** The base configuration's converged analysis
//!    state (the primary evaluator's snapshots, schedule memos and release
//!    maps) is the prefix every candidate's replay starts from. It is
//!    computed once — by whatever evaluation anchored the primary — and
//!    distributed to the lanes by an allocation-reusing state copy, never
//!    re-derived per candidate.
//! 2. **Divergent tails, in lockstep.** Each candidate's dirty-cone replay
//!    (the restricted RTA passes of [`crate::delta`]) runs in its own
//!    *lane*: a private fixed-point state over the dense structure-of-array
//!    entity tables. Lanes are independent, so the tails run data-parallel
//!    with rayon (`par_iter_mut` across lanes), each lane working on its
//!    own slice of SoA vectors.
//!
//! [`BatchScratch`] holds the lanes. Like the evaluator's own `Scratch`,
//! lanes are **cleared, not reallocated** between batches: the first batch
//! pays the allocation, every later batch of any width reuses the same
//! fixed-point vectors.
//!
//! # Determinism: bit-identical to sequential delta evaluation
//!
//! The contract — CI-enforced by the `batch_equivalence` suite like every
//! prior layer — is that `evaluate_batch` returns **bit-identical** results
//! to N sequential [`Evaluator::evaluate_delta`] calls made from the same
//! base state: same summaries (δΓ, `s_total`, convergence metadata), same
//! infeasibility verdicts, and — after [`Evaluator::adopt_lane`] — the same
//! outcome maps. This holds because each lane evaluates its candidate
//! against the same base fixed point a sequential call would extend, and
//! the delta path itself is bit-identical to the full fixed point by the
//! PR 2 contract. Results are returned in request order, independent of
//! worker scheduling.
//!
//! # When batching degrades to sequential work
//!
//! A candidate whose seeds are structural (TDMA changes), whose priorities
//! are not a per-resource permutation of the base's, or that arrives while
//! the primary has no successful analysis to diff against, takes the full
//! evaluation path inside its lane — correct by the same argument, just
//! without prefix reuse. A batch of such candidates (e.g. OS's slot scans)
//! is still evaluated in parallel across lanes, but each lane performs the
//! full fixed point: the win is then core-level parallelism, not shared
//! work. With one lane (width 1, or `RAYON_NUM_THREADS=1`) the batch is
//! exactly the sequential loop, results included.

use mcs_model::SystemConfig;

use crate::context::{EvalSummary, Evaluator};
use crate::delta::DeltaSeeds;
use crate::multicluster::AnalysisError;

/// One candidate of a batch evaluation: the configuration to analyze and a
/// seed set over-approximating its difference to the batch base (the
/// primary evaluator's last successful analysis), exactly as
/// [`Evaluator::evaluate_delta`] expects.
#[derive(Clone, Debug, Default)]
pub struct BatchRequest {
    /// The candidate configuration ψ.
    pub config: SystemConfig,
    /// Delta seeds relative to the primary evaluator's last completed
    /// analysis. [`DeltaSeeds::structural`] forces the full path for this
    /// candidate (the right call for TDMA moves).
    pub seeds: DeltaSeeds,
}

/// The reusable lane state of [`Evaluator::evaluate_batch`]: N lanes of
/// fixed-point vectors, one per in-flight candidate, cleared — not
/// reallocated — between batches (see the module docs above).
///
/// A `BatchScratch` is bound to whatever system the evaluator that uses it
/// analyzes; passing it to an evaluator of a different system transparently
/// rebuilds the lanes.
#[derive(Default)]
pub struct BatchScratch<'s> {
    pub(crate) lanes: Vec<Lane<'s>>,
    /// Lanes holding results of the most recent batch (a prefix of
    /// `lanes`); only these may be adopted.
    pub(crate) live: usize,
}

impl<'s> std::fmt::Debug for BatchScratch<'s> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchScratch").finish_non_exhaustive()
    }
}

/// One candidate lane: a private evaluator (its own scratch, schedule
/// memos and snapshots) plus the result of its last batch evaluation.
pub(crate) struct Lane<'s> {
    pub(crate) eval: Evaluator<'s>,
    pub(crate) result: Option<Result<EvalSummary, AnalysisError>>,
    /// `(delta, full)` holistic-pass increments of the last batch, folded
    /// into the primary's [`Evaluator::delta_stats`] aggregate.
    pub(crate) stats_gain: (u64, u64),
}

impl<'s> BatchScratch<'s> {
    /// Creates an empty scratch; lanes are built lazily on first use.
    pub fn new() -> Self {
        BatchScratch {
            lanes: Vec::new(),
            live: 0,
        }
    }

    /// Number of lanes currently allocated (the high-water batch width).
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Result of candidate `index` from the most recent batch, if any.
    pub fn result(&self, index: usize) -> Option<&Result<EvalSummary, AnalysisError>> {
        if index < self.live {
            self.lanes[index].result.as_ref()
        } else {
            None
        }
    }
}
