//! The degree of schedulability δΓ (paper §5.1).
//!
//! ```text
//! f1 = Σ_i max(0, r_Gi − D_Gi)        (plus local-deadline misses)
//! f2 = Σ_i (r_Gi − D_Gi)
//! δΓ = f1 if f1 > 0, else f2
//! ```
//!
//! `f1` measures how badly deadlines are missed; when every deadline is met
//! (`f1 = 0`), `f2` (a negative number) still differentiates schedulable
//! alternatives: smaller `f2` means more slack. δΓ is *minimized* by the
//! synthesis heuristics.

use mcs_model::System;

use crate::outcome::AnalysisOutcome;

/// The degree of schedulability of an analyzed system.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SchedulabilityDegree {
    /// `f1`: total deadline overrun in ticks (zero iff schedulable).
    pub overrun: u64,
    /// `f2`: total signed slack `Σ (r_G − D_G)` in ticks (negative when
    /// schedulable).
    pub slack: i128,
    /// Whether all analysis fixed points converged; a non-converged system
    /// is never schedulable.
    pub converged: bool,
}

impl SchedulabilityDegree {
    /// `true` iff all deadlines hold and the analysis converged.
    pub fn is_schedulable(&self) -> bool {
        self.converged && self.overrun == 0
    }

    /// The scalar cost minimized by the optimizer: `f1` when positive
    /// (unschedulable), `f2` otherwise.
    pub fn cost(&self) -> i128 {
        if !self.is_schedulable() {
            // Diverged-but-zero-overrun configurations are ranked worse than
            // any overrun-measured one.
            if self.overrun == 0 {
                i128::MAX / 2
            } else {
                i128::from(self.overrun)
            }
        } else {
            self.slack
        }
    }
}

/// Computes δΓ from an analysis outcome, including local process deadlines
/// (paper footnote 1).
pub fn degree_of_schedulability(
    system: &System,
    outcome: &AnalysisOutcome,
) -> SchedulabilityDegree {
    let app = &system.application;
    let mut overrun: u64 = 0;
    let mut slack: i128 = 0;
    for graph in app.graphs() {
        let r = outcome.graph_response(graph.id());
        let d = graph.deadline();
        overrun += r.saturating_sub(d).ticks();
        slack += i128::from(r.ticks()) - i128::from(d.ticks());
    }
    for process in app.processes() {
        if let Some(d) = process.local_deadline() {
            let completion = outcome.process_timing(process.id()).worst_completion();
            overrun += completion.saturating_sub(d).ticks();
        }
    }
    SchedulabilityDegree {
        overrun,
        slack,
        converged: outcome.converged,
    }
}

/// Convenience: `true` iff the analyzed system meets every deadline.
pub fn is_schedulable(system: &System, outcome: &AnalysisOutcome) -> bool {
    degree_of_schedulability(system, outcome).is_schedulable()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_orders_unschedulable_by_overrun_and_schedulable_by_slack() {
        let bad = SchedulabilityDegree {
            overrun: 100,
            slack: 100,
            converged: true,
        };
        let worse = SchedulabilityDegree {
            overrun: 500,
            slack: 500,
            converged: true,
        };
        let good = SchedulabilityDegree {
            overrun: 0,
            slack: -50,
            converged: true,
        };
        let better = SchedulabilityDegree {
            overrun: 0,
            slack: -90,
            converged: true,
        };
        let diverged = SchedulabilityDegree {
            overrun: 0,
            slack: -90,
            converged: false,
        };
        assert!(bad.cost() < worse.cost());
        assert!(good.cost() < bad.cost());
        assert!(better.cost() < good.cost());
        assert!(diverged.cost() > worse.cost());
        assert!(good.is_schedulable());
        assert!(!bad.is_schedulable());
        assert!(!diverged.is_schedulable());
    }

    #[test]
    fn zero_time_edge() {
        let d = SchedulabilityDegree {
            overrun: 0,
            slack: 0,
            converged: true,
        };
        assert!(d.is_schedulable());
        assert_eq!(d.cost(), 0);
    }
}
