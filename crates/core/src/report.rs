//! Human-readable rendering of an [`AnalysisOutcome`]: per-graph verdicts,
//! worst-case entity timing and queue bounds, in one text block.

use std::fmt::Write as _;

use mcs_model::{MessageRoute, System};

use crate::outcome::AnalysisOutcome;
use crate::schedulability::degree_of_schedulability;

/// Renders a complete analysis report.
///
/// # Examples
///
/// The output has the shape:
///
/// ```text
/// schedulable: true (slack -30000 ticks over 1 graph)
/// == graphs ==
///   G1    r_G =  210ms  D =  240ms  [met]
/// == processes ==
///   P1    N1  O=    0ms J=    0ms w=    0ms r=   30ms
/// == gateway-crossing messages ==
///   m0    TtcToEtc  arrival  115ms
/// == queue bounds ==
///   Out_CAN 8 B | Out_TTP 4 B | total 16 B
/// ```
pub fn render_report(system: &System, outcome: &AnalysisOutcome) -> String {
    let mut out = String::new();
    let app = &system.application;
    let degree = degree_of_schedulability(system, outcome);
    let _ = writeln!(
        out,
        "schedulable: {} (δΓ cost {} over {} graph{})",
        degree.is_schedulable(),
        degree.cost(),
        app.graphs().len(),
        if app.graphs().len() == 1 { "" } else { "s" },
    );

    let _ = writeln!(out, "== graphs ==");
    for graph in app.graphs() {
        let r = outcome.graph_response(graph.id());
        let d = graph.deadline();
        let _ = writeln!(
            out,
            "  {:<12} r_G = {:>9}  D = {:>9}  [{}]",
            graph.name(),
            r.to_string(),
            d.to_string(),
            if r <= d { "met" } else { "MISSED" }
        );
    }

    let _ = writeln!(out, "== processes ==");
    for p in app.processes() {
        let t = outcome.process_timing(p.id());
        let _ = writeln!(
            out,
            "  {:<16} {:<8} O={:>9} J={:>9} w={:>9} r={:>9}",
            p.name(),
            system.architecture.node(p.node()).name(),
            t.offset.to_string(),
            t.jitter.to_string(),
            t.delay.to_string(),
            t.response.to_string()
        );
    }

    let crossing: Vec<_> = app
        .messages()
        .iter()
        .filter(|m| system.route(m.id()).crosses_gateway())
        .collect();
    if !crossing.is_empty() {
        let _ = writeln!(out, "== gateway-crossing messages ==");
        for m in crossing {
            let timing = &outcome.message_timing[&m.id()];
            let route = system.route(m.id());
            let direction = match route {
                MessageRoute::TtcToEtc => "TTC->ETC",
                MessageRoute::EtcToTtc => "ETC->TTC",
                _ => unreachable!("filtered to gateway-crossing routes"),
            };
            let _ = writeln!(
                out,
                "  {:<8} {}  {} -> {}  arrival {:>9}",
                m.name(),
                direction,
                app.process(m.source()).name(),
                app.process(m.dest()).name(),
                timing.arrival.to_string()
            );
        }
    }

    let q = &outcome.queues;
    let _ = writeln!(out, "== queue bounds ==");
    let mut nodes: Vec<_> = q.out_node.iter().collect();
    nodes.sort();
    let per_node = nodes
        .iter()
        .map(|(n, b)| format!("Out_{} {} B", system.architecture.node(**n).name(), b))
        .collect::<Vec<_>>()
        .join(" | ");
    let _ = writeln!(
        out,
        "  Out_CAN {} B | Out_TTP {} B{}{} | total {} B",
        q.out_can,
        q.out_ttp,
        if per_node.is_empty() { "" } else { " | " },
        per_node,
        q.total()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multicluster::{multi_cluster_scheduling, AnalysisParams};
    use mcs_model::{
        Application, Architecture, MessageId, NodeRole, Priority, PriorityAssignment, SystemConfig,
        TdmaConfig, TdmaSlot, Time,
    };

    #[test]
    fn report_mentions_every_section() {
        let mut b = Architecture::builder();
        let n1 = b.add_node("N1", NodeRole::TimeTriggered);
        let n2 = b.add_node("N2", NodeRole::EventTriggered);
        let ng = b.add_node("NG", NodeRole::Gateway);
        let arch = b.build().expect("valid");
        let mut ab = Application::builder();
        let g = ab.add_graph("loop", Time::from_millis(100), Time::from_millis(100));
        let a = ab.add_process(g, "produce", n1, Time::from_millis(5));
        let c = ab.add_process(g, "consume", n2, Time::from_millis(5));
        ab.link(a, c, 8);
        let app = ab.build(&arch).expect("valid");
        let system = System::new(app, arch);
        let mut pri = PriorityAssignment::new();
        pri.set_process(c, Priority::new(0));
        pri.set_message(MessageId::new(0), Priority::new(0));
        let config = SystemConfig::new(
            TdmaConfig::new(vec![
                TdmaSlot {
                    node: ng,
                    capacity_bytes: 8,
                },
                TdmaSlot {
                    node: n1,
                    capacity_bytes: 8,
                },
            ]),
            pri,
        );
        let outcome =
            multi_cluster_scheduling(&system, &config, &AnalysisParams::default()).expect("ok");
        let report = render_report(&system, &outcome);
        assert!(report.contains("schedulable: true"));
        assert!(report.contains("== graphs =="));
        assert!(report.contains("loop"));
        assert!(report.contains("produce"));
        assert!(report.contains("TTC->ETC"));
        assert!(report.contains("Out_CAN"));
        assert!(report.contains("total"));
    }
}
