//! Rendering of analysis results: a human-readable report for an
//! [`AnalysisOutcome`] ([`render_report`]) and a minimal JSON-lines
//! encoder ([`json_line`], [`JsonLinesWriter`]) for stable
//! machine-readable experiment records.

use std::fmt::Write as _;
use std::io;

use mcs_model::{MessageRoute, System};

use crate::outcome::AnalysisOutcome;
use crate::schedulability::degree_of_schedulability;

/// Renders a complete analysis report.
///
/// # Examples
///
/// The output has the shape:
///
/// ```text
/// schedulable: true (slack -30000 ticks over 1 graph)
/// == graphs ==
///   G1    r_G =  210ms  D =  240ms  [met]
/// == processes ==
///   P1    N1  O=    0ms J=    0ms w=    0ms r=   30ms
/// == gateway-crossing messages ==
///   m0    TtcToEtc  arrival  115ms
/// == queue bounds ==
///   Out_CAN 8 B | Out_TTP 4 B | total 16 B
/// ```
pub fn render_report(system: &System, outcome: &AnalysisOutcome) -> String {
    let mut out = String::new();
    let app = &system.application;
    let degree = degree_of_schedulability(system, outcome);
    let _ = writeln!(
        out,
        "schedulable: {} (δΓ cost {} over {} graph{})",
        degree.is_schedulable(),
        degree.cost(),
        app.graphs().len(),
        if app.graphs().len() == 1 { "" } else { "s" },
    );

    let _ = writeln!(out, "== graphs ==");
    for graph in app.graphs() {
        let r = outcome.graph_response(graph.id());
        let d = graph.deadline();
        let _ = writeln!(
            out,
            "  {:<12} r_G = {:>9}  D = {:>9}  [{}]",
            graph.name(),
            r.to_string(),
            d.to_string(),
            if r <= d { "met" } else { "MISSED" }
        );
    }

    let _ = writeln!(out, "== processes ==");
    for p in app.processes() {
        let t = outcome.process_timing(p.id());
        let _ = writeln!(
            out,
            "  {:<16} {:<8} O={:>9} J={:>9} w={:>9} r={:>9}",
            p.name(),
            system.architecture.node(p.node()).name(),
            t.offset.to_string(),
            t.jitter.to_string(),
            t.delay.to_string(),
            t.response.to_string()
        );
    }

    let crossing: Vec<_> = app
        .messages()
        .iter()
        .filter(|m| system.route(m.id()).crosses_gateway())
        .collect();
    if !crossing.is_empty() {
        let _ = writeln!(out, "== gateway-crossing messages ==");
        for m in crossing {
            let timing = &outcome.message_timing[&m.id()];
            let route = system.route(m.id());
            let direction = match route {
                MessageRoute::TtcToEtc => "TTC->ETC",
                MessageRoute::EtcToTtc => "ETC->TTC",
                // mcs-lint: allow(panic-policy) -- the iterator above filters to gateway-crossing routes
                _ => unreachable!("filtered to gateway-crossing routes"),
            };
            let _ = writeln!(
                out,
                "  {:<8} {}  {} -> {}  arrival {:>9}",
                m.name(),
                direction,
                app.process(m.source()).name(),
                app.process(m.dest()).name(),
                timing.arrival.to_string()
            );
        }
    }

    let q = &outcome.queues;
    let _ = writeln!(out, "== queue bounds ==");
    let mut nodes: Vec<_> = q.out_node.iter().collect();
    nodes.sort();
    let per_node = nodes
        .iter()
        .map(|(n, b)| format!("Out_{} {} B", system.architecture.node(**n).name(), b))
        .collect::<Vec<_>>()
        .join(" | ");
    let _ = writeln!(
        out,
        "  Out_CAN {} B | Out_TTP {} B{}{} | total {} B",
        q.out_can,
        q.out_ttp,
        if per_node.is_empty() { "" } else { " | " },
        per_node,
        q.total()
    );
    out
}

/// One typed value of a [`json_line`] record.
#[derive(Clone, Copy, Debug)]
pub enum JsonField<'a> {
    /// A string (escaped on encoding).
    Str(&'a str),
    /// An unsigned integer.
    UInt(u64),
    /// A signed (possibly wide) integer. JSON numbers are unbounded;
    /// consumers needing exact `i128` values should parse accordingly.
    Int(i128),
    /// A float; non-finite values encode as `null`.
    Float(f64),
    /// A boolean.
    Bool(bool),
}

fn push_json_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Encodes one flat record as a single JSON line (no trailing newline).
///
/// Field order is preserved, strings are escaped, and the output never
/// contains a raw newline — the stability contract batch consumers rely
/// on. Duplicate keys are the caller's responsibility.
///
/// # Examples
///
/// ```
/// use mcs_core::{json_line, JsonField};
///
/// let line = json_line(&[
///     ("strategy", JsonField::Str("OS")),
///     ("schedulable", JsonField::Bool(true)),
///     ("total_buffers", JsonField::UInt(1020)),
/// ]);
/// assert_eq!(
///     line,
///     r#"{"strategy": "OS", "schedulable": true, "total_buffers": 1020}"#
/// );
/// ```
pub fn json_line(fields: &[(&str, JsonField<'_>)]) -> String {
    let mut out = String::from("{");
    for (i, (key, value)) in fields.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        push_json_escaped(&mut out, key);
        out.push_str(": ");
        match value {
            JsonField::Str(s) => push_json_escaped(&mut out, s),
            JsonField::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            JsonField::Int(v) => {
                let _ = write!(out, "{v}");
            }
            JsonField::Float(v) if v.is_finite() => {
                let _ = write!(out, "{v}");
            }
            JsonField::Float(_) => out.push_str("null"),
            JsonField::Bool(v) => {
                let _ = write!(out, "{v}");
            }
        }
    }
    out.push('}');
    out
}

/// A JSON-lines (`.jsonl`) stream writer: one [`json_line`] record per
/// line over any [`io::Write`] sink.
#[derive(Debug)]
pub struct JsonLinesWriter<W: io::Write> {
    sink: W,
    records: u64,
}

impl<W: io::Write> JsonLinesWriter<W> {
    /// Wraps a sink.
    pub fn new(sink: W) -> Self {
        JsonLinesWriter { sink, records: 0 }
    }

    /// Writes one record as a line.
    ///
    /// # Errors
    ///
    /// Propagates the sink's I/O error.
    pub fn record(&mut self, fields: &[(&str, JsonField<'_>)]) -> io::Result<()> {
        self.write_line(&json_line(fields))
    }

    /// Writes one pre-encoded line (as produced by [`json_line`]).
    ///
    /// # Errors
    ///
    /// Propagates the sink's I/O error.
    pub fn write_line(&mut self, line: &str) -> io::Result<()> {
        debug_assert!(!line.contains('\n'), "JSONL records must be single lines");
        self.sink.write_all(line.as_bytes())?;
        self.sink.write_all(b"\n")?;
        self.records += 1;
        Ok(())
    }

    /// Records written so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Flushes and returns the sink.
    ///
    /// # Errors
    ///
    /// Propagates the sink's I/O error.
    pub fn finish(mut self) -> io::Result<W> {
        self.sink.flush()?;
        Ok(self.sink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multicluster::{multi_cluster_scheduling, AnalysisParams};
    use mcs_model::{
        Application, Architecture, MessageId, NodeRole, Priority, PriorityAssignment, SystemConfig,
        TdmaConfig, TdmaSlot, Time,
    };

    #[test]
    fn report_mentions_every_section() {
        let mut b = Architecture::builder();
        let n1 = b.add_node("N1", NodeRole::TimeTriggered);
        let n2 = b.add_node("N2", NodeRole::EventTriggered);
        let ng = b.add_node("NG", NodeRole::Gateway);
        let arch = b.build().expect("valid");
        let mut ab = Application::builder();
        let g = ab.add_graph("loop", Time::from_millis(100), Time::from_millis(100));
        let a = ab.add_process(g, "produce", n1, Time::from_millis(5));
        let c = ab.add_process(g, "consume", n2, Time::from_millis(5));
        ab.link(a, c, 8);
        let app = ab.build(&arch).expect("valid");
        let system = System::new(app, arch);
        let mut pri = PriorityAssignment::new();
        pri.set_process(c, Priority::new(0));
        pri.set_message(MessageId::new(0), Priority::new(0));
        let config = SystemConfig::new(
            TdmaConfig::new(vec![
                TdmaSlot {
                    node: ng,
                    capacity_bytes: 8,
                },
                TdmaSlot {
                    node: n1,
                    capacity_bytes: 8,
                },
            ]),
            pri,
        );
        let outcome =
            multi_cluster_scheduling(&system, &config, &AnalysisParams::default()).expect("ok");
        let report = render_report(&system, &outcome);
        assert!(report.contains("schedulable: true"));
        assert!(report.contains("== graphs =="));
        assert!(report.contains("loop"));
        assert!(report.contains("produce"));
        assert!(report.contains("TTC->ETC"));
        assert!(report.contains("Out_CAN"));
        assert!(report.contains("total"));
    }

    #[test]
    fn json_lines_are_escaped_ordered_and_newline_free() {
        let line = json_line(&[
            ("label", JsonField::Str("a\"b\\c\nd")),
            ("cost", JsonField::Int(-42)),
            ("ratio", JsonField::Float(f64::NAN)),
            ("ok", JsonField::Bool(false)),
        ]);
        assert_eq!(
            line,
            r#"{"label": "a\"b\\c\nd", "cost": -42, "ratio": null, "ok": false}"#
        );
        assert!(!line.contains('\n'));

        let mut writer = JsonLinesWriter::new(Vec::new());
        writer
            .record(&[("x", JsonField::UInt(1))])
            .expect("in-memory sink");
        writer
            .record(&[("x", JsonField::UInt(2))])
            .expect("in-memory sink");
        assert_eq!(writer.records(), 2);
        let buffer = writer.finish().expect("flush");
        assert_eq!(
            String::from_utf8(buffer).unwrap(),
            "{\"x\": 1}\n{\"x\": 2}\n"
        );
    }
}
