//! Worst-case delay and backlog of the gateway's `Out_TTP` FIFO
//! (paper §4.1.2: ETC → TTC message passing).
//!
//! Messages arriving from the CAN bus are appended to a FIFO; every TDMA
//! round, the gateway's MEDL drains up to `S_G` bytes from the front into
//! the gateway slot. For a message `m` of size `S_m` with `I_m` bytes queued
//! ahead of it:
//!
//! ```text
//! w_m^TTP = B_m + ⌈(S_m + I_m) / S_G⌉ · T_TDMA
//! B_m     = T_TDMA − (O_m mod T_TDMA) + O_SG
//! I_m     = Σ_{j ∈ hp(m)} ⌈(w_m^TTP + J_m − O_mj)⁺ / T_j⌉⁺ · s_j
//! ```
//!
//! and the FIFO buffer bound is `s_Out^TTP = max_m (S_m + I_m)`.

use mcs_can::sound_phase;
use mcs_model::Time;

/// One ETC→TTC message flowing through the `Out_TTP` FIFO.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FifoFlow {
    /// Ordering rank (the CAN priority, the paper's proxy for "queued ahead
    /// of m"); lower = drained earlier.
    pub rank: u64,
    /// Activation period `T`.
    pub period: Time,
    /// Jitter `J_m` of the enqueue instant: worst case, the response time of
    /// the CAN leg plus the gateway transfer process.
    pub jitter: Time,
    /// Earliest enqueue offset `O_m` within the transaction.
    pub offset: Time,
    /// The transaction (process graph), for offset phasing.
    pub transaction: Option<u32>,
    /// Message size `s_m` in bytes.
    pub size_bytes: u32,
    /// Current worst-case response-time iterate of the flow's FIFO leg,
    /// gating offset-phase reductions against carry-in.
    pub response: Time,
}

/// Static parameters of the gateway's TTP side.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TtpQueueParams {
    /// TDMA round duration `T_TDMA`.
    pub round: Time,
    /// Offset `O_SG` of the gateway slot within a round.
    pub slot_offset: Time,
    /// Byte capacity `S_G` of the gateway slot.
    pub slot_capacity: u32,
    /// Wire duration of the gateway slot (the message's `C` on TTP).
    pub slot_duration: Time,
}

/// The converged queueing result of one FIFO flow.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FifoDelay {
    /// Worst-case FIFO delay `w_m^TTP`.
    pub delay: Time,
    /// Worst-case bytes occupying the FIFO when `m` is queued:
    /// `S_m + I_m`.
    pub backlog: u64,
}

fn same_transaction(a: Option<u32>, b: Option<u32>) -> bool {
    matches!((a, b), (Some(x), Some(y)) if x == y)
}

/// Bytes queued ahead of `flows[m]` within a window `w`: the interference of
/// every flow with a lower rank, filtered inline (no per-call allocation).
fn queued_ahead_of(flows: &[FifoFlow], m: usize, w: Time) -> u64 {
    let me = &flows[m];
    flows
        .iter()
        .enumerate()
        .filter(|&(k, f)| k != m && f.rank < me.rank)
        .map(|(_, j)| {
            let phase = sound_phase(
                me.offset,
                me.jitter,
                j.offset,
                j.period,
                j.response,
                same_transaction(me.transaction, j.transaction),
            );
            // The window uses m's own jitter (paper eq. for I_m).
            let window = (w + me.jitter + Time::from_ticks(1)).saturating_sub(phase);
            let count = if window.is_zero() {
                0
            } else {
                window.div_ceil(j.period)
            };
            u64::from(j.size_bytes) * count
        })
        .sum()
}

/// Blocking term `B_m`: the wait until the gateway slot next circulates.
pub fn fifo_blocking(flow: &FifoFlow, params: &TtpQueueParams) -> Time {
    params.round - (flow.offset % params.round) + params.slot_offset
}

/// Computes the worst-case FIFO delay and backlog of `flows[m]`.
///
/// Returns `None` if the fixed point exceeds `horizon`.
///
/// # Panics
///
/// Panics if `m` is out of range, the slot capacity is zero, or a flow has a
/// zero period.
pub fn fifo_delay(
    flows: &[FifoFlow],
    m: usize,
    params: &TtpQueueParams,
    horizon: Time,
) -> Option<FifoDelay> {
    fifo_delay_from(flows, m, params, horizon, Time::ZERO)
}

/// [`fifo_delay`] with a warm-start hint: the fixed point starts at
/// `max(B_m, hint)`.
///
/// Sound when the hint converged under a pointwise-smaller backlog operator
/// (enqueue jitters only grow, offsets constant across the outer
/// iteration); the fixed point reached is identical to a cold start. `ZERO`
/// reproduces the cold start exactly. (The occurrence-based bound has no
/// warm-start variant: its departure depends non-monotonically on the
/// enqueue jitter.)
///
/// # Panics
///
/// Panics if `m` is out of range, the slot capacity is zero, or a flow has
/// a zero period.
pub fn fifo_delay_from(
    flows: &[FifoFlow],
    m: usize,
    params: &TtpQueueParams,
    horizon: Time,
    hint: Time,
) -> Option<FifoDelay> {
    assert!(params.slot_capacity > 0, "gateway slot has zero capacity");
    let me = &flows[m];
    let blocking = fifo_blocking(me, params);
    let mut w = blocking.max(hint);
    loop {
        let backlog = u64::from(me.size_bytes) + queued_ahead_of(flows, m, w);
        let rounds = backlog.div_ceil(u64::from(params.slot_capacity));
        let next = blocking.saturating_add(params.round.saturating_mul(rounds));
        if next > horizon {
            return None;
        }
        if next == w {
            return Some(FifoDelay { delay: w, backlog });
        }
        w = next;
    }
}

/// Computes the worst-case FIFO delay of `flows[m]` with the tighter
/// *occurrence-based* bound: the frame leaves in the
/// `⌈(S_m + I_m)/S_G⌉`-th gateway-slot occurrence starting at or after the
/// worst-case enqueue instant `O_m + J_m`.
///
/// This refines the paper's closed form (which charges a full
/// `T_TDMA − O_m mod T_TDMA` regardless of the enqueue jitter) while staying
/// safe: the FIFO drains up to `S_G` bytes in every round, so a message with
/// `b` bytes at or ahead of it has left after `⌈b / S_G⌉` gateway slots.
///
/// Returns `None` if the fixed point exceeds `horizon`.
///
/// # Panics
///
/// Panics if `m` is out of range, the slot capacity is zero, or a flow has a
/// zero period.
pub fn fifo_delay_occurrence(
    flows: &[FifoFlow],
    m: usize,
    params: &TtpQueueParams,
    horizon: Time,
) -> Option<FifoDelay> {
    assert!(params.slot_capacity > 0, "gateway slot has zero capacity");
    let me = &flows[m];
    let enqueue = me.offset.saturating_add(me.jitter);
    // First gateway-slot start at or after the worst-case enqueue.
    let first_start = if enqueue <= params.slot_offset {
        params.slot_offset
    } else {
        params.slot_offset
            + params
                .round
                .saturating_mul((enqueue - params.slot_offset).div_ceil(params.round))
    };
    let mut w = Time::ZERO;
    loop {
        let backlog = u64::from(me.size_bytes) + queued_ahead_of(flows, m, w);
        let rounds = backlog.div_ceil(u64::from(params.slot_capacity));
        let depart = first_start.saturating_add(params.round.saturating_mul(rounds - 1));
        let next = depart.saturating_sub(enqueue);
        if next > horizon {
            return None;
        }
        if next == w {
            return Some(FifoDelay { delay: w, backlog });
        }
        w = next;
    }
}

/// Computes delays and backlogs for all flows.
pub fn fifo_delays(
    flows: &[FifoFlow],
    params: &TtpQueueParams,
    horizon: Time,
) -> Vec<Option<FifoDelay>> {
    (0..flows.len())
        .map(|m| fifo_delay(flows, m, params, horizon))
        .collect()
}

/// The FIFO buffer bound `s_Out^TTP = max_m (S_m + I_m)`, treating diverged
/// flows as occupying the full backlog implied by the horizon is meaningless
/// — diverged flows simply contribute their own size plus everything ahead
/// at the horizon; callers reject unschedulable systems before sizing.
pub fn fifo_size_bound(delays: &[Option<FifoDelay>]) -> u64 {
    delays
        .iter()
        .flatten()
        .map(|d| d.backlog)
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params_fig4() -> TtpQueueParams {
        // Round 40 ms, S_G first (offset 0), 8-byte capacity, 20 ms slot.
        TtpQueueParams {
            round: Time::from_millis(40),
            slot_offset: Time::ZERO,
            slot_capacity: 8,
            slot_duration: Time::from_millis(20),
        }
    }

    fn flow(rank: u64, size: u32) -> FifoFlow {
        FifoFlow {
            rank,
            period: Time::from_millis(240),
            jitter: Time::ZERO,
            offset: Time::ZERO,
            transaction: None,
            size_bytes: size,
            response: Time::ZERO,
        }
    }

    #[test]
    fn blocking_waits_for_next_gateway_slot() {
        let params = params_fig4();
        let mut f = flow(0, 8);
        // Enqueued at 90 ms: next round boundary at 120, slot offset 0.
        f.offset = Time::from_millis(90);
        assert_eq!(fifo_blocking(&f, &params), Time::from_millis(30));
        // Aligned on a round boundary: a full round of blocking (the paper's
        // formula is conservative here).
        f.offset = Time::from_millis(80);
        assert_eq!(fifo_blocking(&f, &params), Time::from_millis(40));
    }

    #[test]
    fn single_flow_drains_in_one_round() {
        let params = params_fig4();
        let flows = vec![flow(0, 8)];
        let d = fifo_delay(&flows, 0, &params, Time::from_millis(10_000)).expect("converges");
        // B = 40 (aligned), one round to drain 8/8 bytes.
        assert_eq!(d.delay, Time::from_millis(80));
        assert_eq!(d.backlog, 8);
    }

    #[test]
    fn traffic_ahead_adds_rounds() {
        let params = params_fig4();
        // 16 bytes ahead of an 8-byte message: 24 bytes = 3 rounds.
        let flows = vec![flow(0, 16), flow(1, 8)];
        let d = fifo_delay(&flows, 1, &params, Time::from_millis(10_000)).expect("converges");
        assert_eq!(d.backlog, 24);
        assert_eq!(d.delay, Time::from_millis(40 + 3 * 40));
        // The head-of-line flow only waits for itself.
        let d0 = fifo_delay(&flows, 0, &params, Time::from_millis(10_000)).expect("converges");
        assert_eq!(d0.backlog, 16);
        assert_eq!(d0.delay, Time::from_millis(40 + 2 * 40));
    }

    #[test]
    fn phased_flows_do_not_queue_ahead() {
        let params = params_fig4();
        let mut a = flow(0, 8);
        let mut b = flow(1, 8);
        a.transaction = Some(1);
        b.transaction = Some(1);
        a.offset = Time::from_millis(200); // far after b's window closes
        b.offset = Time::ZERO;
        let flows = vec![a, b];
        let d = fifo_delay(&flows, 1, &params, Time::from_millis(10_000)).expect("converges");
        assert_eq!(d.backlog, 8);
    }

    #[test]
    fn overload_diverges() {
        let params = params_fig4();
        // 64 bytes ahead every 40 ms against an 8-byte/round drain: diverges.
        let mut hog = flow(0, 64);
        hog.period = Time::from_millis(40);
        let flows = vec![hog, flow(1, 8)];
        assert_eq!(
            fifo_delay(&flows, 1, &params, Time::from_millis(100_000)),
            None
        );
    }

    #[test]
    fn size_bound_takes_the_worst_flow() {
        let delays = vec![
            Some(FifoDelay {
                delay: Time::ZERO,
                backlog: 24,
            }),
            None,
            Some(FifoDelay {
                delay: Time::ZERO,
                backlog: 40,
            }),
        ];
        assert_eq!(fifo_size_bound(&delays), 40);
        assert_eq!(fifo_size_bound(&[]), 0);
    }
}
