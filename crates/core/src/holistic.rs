//! The holistic response-time analysis of the event-triggered side, given a
//! fixed TTC schedule (the paper's `ResponseTimeAnalysis(Γ, φ, π)`).
//!
//! For a fixed static schedule of the TTC (process start times and frame
//! placements), this module iterates the coupled fixed points of
//!
//! * offset/jitter propagation along the process graphs
//!   (`J_D(m) = r_m`, `O_B = max` over predecessor availabilities),
//! * CAN queuing delays of every message with a CAN leg (`mcs-can`),
//! * `Out_TTP` FIFO delays of ETC→TTC messages ([`crate::queues`]), and
//! * preemption delays of processes sharing each ET CPU ([`crate::rta`]),
//!
//! until the response times stabilize. All quantities grow monotonically, so
//! the iteration either converges or crosses the analysis horizon, in which
//! case the affected delays are clamped to the horizon and the result is
//! flagged as diverged (unschedulable).
//!
//! The pass operates entirely on the reusable state of [`crate::context`]:
//! the immutable `SystemContext` tables and the `Scratch` vectors, which it
//! clears (never reallocates) on entry.

use mcs_can::CanFlow;
use mcs_model::{GraphId, MessageId, MessageRoute, Priority, System, Time};
use mcs_ttp::TtcSchedule;

use crate::context::{Scratch, SystemContext};
use crate::multicluster::FifoBound;
use crate::queues::{fifo_delay_from, fifo_delay_occurrence, FifoFlow, TtpQueueParams};
use crate::rta::TaskFlow;

/// Ranks: the gateway transfer process outranks all application processes.
fn app_rank(priority: Priority) -> u64 {
    1 << 32 | u64::from(priority.level())
}
const TRANSFER_RANK: u64 = 0;

/// Which entities one propagation walk touches (see
/// [`Holistic::walk_graph`]).
#[derive(Clone, Copy)]
enum WalkMode {
    /// Every entity; `first` additionally resolves the offsets.
    Full {
        /// Whether this is the first pass of the holistic run.
        first: bool,
    },
    /// Only dirty entities, offsets included (their baseline schedule may
    /// have moved); clean entities keep their values untouched.
    Delta,
}

/// One holistic analysis pass over a fixed TTC schedule, reading the shared
/// [`SystemContext`] and mutating only the [`Scratch`].
pub(crate) struct Holistic<'a> {
    pub ctx: &'a SystemContext,
    pub system: &'a System,
    pub schedule: &'a TtcSchedule,
    pub ttp_queue: TtpQueueParams,
    /// One extra round of FIFO pessimism when the TDMA grid does not
    /// re-align with the hyper-period (the gateway slot's phase then drifts
    /// across activations).
    pub grid_slack: Time,
    pub horizon: Time,
    pub max_iterations: u32,
    pub fifo_bound: FifoBound,
    pub s: &'a mut Scratch,
}

impl Holistic<'_> {
    /// Runs the fixed point to convergence (or the iteration cap), leaving
    /// the converged timing state in the scratch; queue bounds are computed
    /// separately by [`queue_bounds`](Holistic::queue_bounds) (the evaluator
    /// needs them only for the final outer iteration). Returns whether the
    /// passes reached stability (as opposed to exhausting the cap).
    ///
    /// Convergence is detected by the pass memos: an iteration in which
    /// every kernel pass saw inputs identical to the previous iteration has
    /// changed nothing (the flows embed every fingerprinted quantity — the
    /// offsets, jitters and responses of both processes and message legs),
    /// which is exactly the classic fixed-point termination test without
    /// snapshotting the state vectors.
    pub(crate) fn run(&mut self) -> bool {
        self.reset();
        let mut first = true;
        for _ in 0..self.max_iterations {
            self.propagate_offsets_and_jitters(first);
            first = false;
            let can_stable = self.can_pass();
            let fifo_stable = self.fifo_pass();
            let cpu_stable = self.cpu_pass();
            if can_stable && fifo_stable && cpu_stable {
                return true;
            }
        }
        false
    }

    /// Restricted fixed point over the dirty cone of `Scratch::dirty`
    /// (see [`crate::delta`]): the scratch holds the converged analysis of
    /// this exact schedule under the delta base configuration (loaded from
    /// the outer iteration's snapshot); clean entities keep those values,
    /// dirty entities restart from the bottom of the lattice and re-climb
    /// against the fixed clean inputs — reaching the same least fixed point
    /// a full re-analysis would, in a fraction of the kernel work. Returns
    /// whether stability was reached within the pass budget; on `false` the
    /// caller must fall back to the full analysis (the scratch is
    /// mid-climb).
    pub(crate) fn run_delta(&mut self) -> bool {
        let ctx = self.ctx;
        // No-op probe: for a pure priority permutation, only the seed
        // position spans' equations changed. Recompute those few fixed
        // points cold against the loaded baseline; if every one reproduces
        // its snapshot value, nothing in the cone can move — the baseline
        // *is* this configuration's analysis.
        if self.s.dirty.probe_ok {
            self.build_delta_inputs();
            if self.probe_unchanged() {
                return true;
            }
        }
        {
            // Dirty entities restart from the bottom of the fixed-point
            // lattice. Offsets are *kept*: they derive from the schedule and
            // BCETs only, which are identical for this snapshot's schedule.
            let s = &mut *self.s;
            for pi in 0..s.dirty.procs.len() {
                if s.dirty.procs[pi] {
                    s.pj[pi] = Time::ZERO;
                    s.pw[pi] = Time::ZERO;
                    s.pr[pi] = ctx.proc_wcet[pi];
                }
            }
            for mi in 0..s.dirty.can.len() {
                if s.dirty.can[mi] {
                    // `can_j` is left in place: for ETC-sent legs the next
                    // jitter pass recomputes it from the (reset) sender
                    // state before any kernel reads it, and for TTC→ETC legs
                    // it is the constant transfer-process response.
                    s.can_w[mi] = Time::ZERO;
                    s.can_r[mi] = Time::ZERO;
                }
            }
            // Positional dirty masks of the CAN and FIFO kernels (static
            // across the delta passes).
            let n = s.can_order.len();
            s.can_dirty_pos.clear();
            s.can_dirty_pos.resize(n, false);
            for k in 0..n {
                s.can_dirty_pos[k] = s.dirty.can[s.can_order[k]];
            }
            s.fifo_dirty_pos.clear();
            s.fifo_dirty_pos.resize(ctx.fifo_ids.len(), false);
            for (k, &mi) in ctx.fifo_ids.iter().enumerate() {
                if s.dirty.ttp[mi] {
                    s.fifo_dirty_pos[k] = true;
                    // The FIFO leg restarts from the bottom as well.
                    s.ttp_w[mi] = Time::ZERO;
                    s.ttp_r[mi] = Time::ZERO;
                    s.backlog[mi] = 0;
                    s.fifo_warm[k] = Time::ZERO;
                }
            }
        }
        // Build the kernel input arrays once; the delta passes update only
        // their dirty entries in place (clean flows cannot change), so each
        // pass costs O(dirty) instead of O(system). A failed probe already
        // staged them — the reset only touched scratch values whose array
        // entries the first delta pass refreshes itself. The full-pass
        // memos are bypassed entirely — `run`'s reset rebuilds them.
        if !self.s.dirty.probe_ok {
            self.build_delta_inputs();
        }
        let mut first = true;
        for _ in 0..self.max_iterations {
            self.propagate_jitters_delta();
            let can_stable = self.can_pass_delta(first);
            let fifo_stable = self.fifo_pass_delta(first);
            let cpu_stable = self.cpu_pass_delta(first);
            first = false;
            if can_stable && fifo_stable && cpu_stable {
                return true;
            }
        }
        false
    }

    /// Probes the equation-dirty spans against the loaded baseline: every
    /// affected fixed point is recomputed cold and compared to its snapshot
    /// value. `true` means the whole dirty cone is provably value-clean.
    /// Requires [`build_delta_inputs`](Holistic::build_delta_inputs) to
    /// have staged the kernel arrays from the (unmodified) baseline state.
    ///
    /// Soundness (why a passing probe implies the baseline is the *least*
    /// fixed point of the new equations, not merely *a* fixed point): a
    /// priority permutation only adds or removes interference terms in the
    /// span entities' equations. A removed term that reproduces the old
    /// value must have contributed zero at the old state, and an added term
    /// must evaluate to zero there (otherwise the cold climb would pass the
    /// old value and mismatch). Every term is monotone in the state, so a
    /// term that is zero at the old state is zero on the whole order
    /// interval below it — the new fixed-point map coincides with the old
    /// one on the entire climb range, and the from-bottom iterations (and
    /// hence the least fixed points) are identical.
    fn probe_unchanged(&mut self) -> bool {
        let ctx = self.ctx;
        let s = &*self.s;
        if let Some((lo, hi)) = s.dirty.eq_can_span {
            for k in lo..=hi {
                let mi = s.can_order[k];
                let w = mcs_can::queuing_delay_sorted(
                    &s.can_flows,
                    k,
                    s.can_blocking[k],
                    self.horizon,
                    Time::ZERO,
                );
                if w != Some(s.can_w[mi]) {
                    return false;
                }
            }
        }
        if let Some((lo, hi)) = s.dirty.eq_fifo_span {
            for (k, &mi) in ctx.fifo_ids.iter().enumerate() {
                let rank = s.fifo_flows[k].rank;
                if rank < lo || rank > hi {
                    continue;
                }
                let delay = match self.fifo_bound {
                    FifoBound::PaperClosedForm => {
                        fifo_delay_from(&s.fifo_flows, k, &self.ttp_queue, self.horizon, Time::ZERO)
                    }
                    FifoBound::SlotOccurrence => {
                        fifo_delay_occurrence(&s.fifo_flows, k, &self.ttp_queue, self.horizon)
                    }
                };
                let reproduced = delay.is_some_and(|d| {
                    d.delay.saturating_add(self.grid_slack) == s.ttp_w[mi]
                        && d.backlog == s.backlog[mi]
                });
                if !reproduced {
                    return false;
                }
            }
        }
        for (ni, et) in ctx.et_nodes.iter().enumerate() {
            let Some((lo, hi)) = s.dirty.eq_node_span[ni] else {
                continue;
            };
            let offset = usize::from(et.is_gateway);
            for idx in lo..=hi {
                let pi = s.node_order[ni][idx].index();
                let w = crate::rta::interference_delay_sorted(
                    &s.prev_task_flows[ni],
                    offset + idx,
                    self.horizon,
                    Time::ZERO,
                );
                if w != Some(s.pw[pi]) {
                    return false;
                }
            }
        }
        true
    }

    /// Seeds the kernel input arrays of a delta run from the loaded
    /// baseline state: the sorted CAN flows, the FIFO flows, and — for each
    /// CPU hosting a dirty process — the rank-ordered task array (staged in
    /// `prev_task_flows`, whose memo role is unused on the delta path).
    fn build_delta_inputs(&mut self) {
        let ctx = self.ctx;
        let system = self.system;
        let n = self.s.can_order.len();
        self.s.can_flows.clear();
        for k in 0..n {
            let mi = self.s.can_order[k];
            let flow = self.can_flow(mi);
            self.s.can_flows.push(flow);
        }
        self.s.fifo_flows.clear();
        for &mi in &ctx.fifo_ids {
            let flow = self.fifo_flow(mi);
            self.s.fifo_flows.push(flow);
        }
        self.s
            .prev_task_flows
            .resize(ctx.et_nodes.len(), Vec::new());
        for (ni, et) in ctx.et_nodes.iter().enumerate() {
            if !self.s.dirty.nodes[ni] {
                continue;
            }
            self.s.prev_task_flows[ni].clear();
            if et.is_gateway {
                let task = transfer_task(system);
                self.s.prev_task_flows[ni].push(task);
            }
            for idx in 0..self.s.node_order[ni].len() {
                let pi = self.s.node_order[ni][idx].index();
                let task = self.task_flow(pi);
                self.s.prev_task_flows[ni].push(task);
            }
        }
    }

    /// Clears the scratch to the initial fixed-point state (`r_i = C_i`,
    /// everything else zero), reusing the allocations.
    fn reset(&mut self) {
        let app = &self.system.application;
        let n_p = app.processes().len();
        let n_m = app.messages().len();
        let s = &mut *self.s;
        for v in [&mut s.po, &mut s.pj, &mut s.pw, &mut s.pr] {
            v.clear();
            v.resize(n_p, Time::ZERO);
        }
        for v in [
            &mut s.can_o,
            &mut s.can_j,
            &mut s.can_w,
            &mut s.can_r,
            &mut s.ttp_o,
            &mut s.ttp_j,
            &mut s.ttp_w,
            &mut s.ttp_r,
            &mut s.arrival,
        ] {
            v.clear();
            v.resize(n_m, Time::ZERO);
        }
        s.backlog.clear();
        s.backlog.resize(n_m, 0);
        s.fifo_warm.clear();
        s.fifo_warm.resize(self.ctx.fifo_ids.len(), Time::ZERO);
        s.prev_can_flows.clear();
        s.prev_fifo_flows.clear();
        s.prev_task_flows
            .resize(self.ctx.et_nodes.len(), Vec::new());
        for prev in &mut s.prev_task_flows {
            prev.clear();
        }
        s.diverged = false;
        s.pr.copy_from_slice(&self.ctx.proc_wcet);
    }

    /// Topological pass updating `O` and `J` of ET processes and of every
    /// message leg from the current response times.
    ///
    /// Offsets are propagated as *earliest availabilities*: an entity's
    /// offset is the best-case instant its triggering data can exist
    /// (predecessor offset + BCET + minimal transmission), and its jitter is
    /// the gap to the worst-case availability. This matches the paper's
    /// worked numbers (Figure 4a: `J_2 = 15`, `r_2 = 55`, `r_3 = 45`) and
    /// spreads ET-chain offsets so that the queue analyses can phase flows
    /// apart.
    ///
    /// Offsets are built from BCETs and the (fixed) schedule only, so they
    /// are invariant across the iterations of one holistic run: after the
    /// `first` pass resolves them in topological order, later passes update
    /// only the jitter side.
    fn propagate_offsets_and_jitters(&mut self, first: bool) {
        for gi in 0..self.ctx.n_graphs {
            self.walk_graph(GraphId::new(gi as u32), WalkMode::Full { first });
        }
    }

    /// Delta form of the propagation pass: only the graphs (phase groups)
    /// containing a dirty entity are walked, and inside them only dirty
    /// entities are recomputed — offsets included, because a schedule
    /// rebuild may have moved the placements under them; clean entities
    /// provably kept every input, so their offsets and jitters stand.
    fn propagate_jitters_delta(&mut self) {
        for gi in 0..self.ctx.n_graphs {
            if self.s.dirty.graphs[gi] {
                self.walk_graph(GraphId::new(gi as u32), WalkMode::Delta);
            }
        }
    }

    /// One graph of the propagation pass (see
    /// [`propagate_offsets_and_jitters`](Holistic::propagate_offsets_and_jitters)).
    fn walk_graph(&mut self, graph: GraphId, mode: WalkMode) {
        let system = self.system;
        let ctx = self.ctx;
        let app = &system.application;
        let schedule = self.schedule;
        let r_transfer = system.gateway.transfer_response();
        let s = &mut *self.s;
        {
            for &p in app.topological_order(graph) {
                let pi = p.index();
                // Whether this entity's offset is (re)resolved this pass:
                // the first pass of a full run, or a dirty entity of a delta
                // run (whose baseline schedule may have moved).
                let touch_proc = match mode {
                    WalkMode::Full { .. } => true,
                    WalkMode::Delta => s.dirty.procs[pi],
                };
                let set_offsets = match mode {
                    WalkMode::Full { first } => first,
                    WalkMode::Delta => true,
                };
                if ctx.proc_is_tt[pi] {
                    if touch_proc && set_offsets {
                        // Fixed by the schedule table for this whole run.
                        s.po[pi] = schedule
                            .start(p)
                            .expect("TT process placed by the list scheduler");
                        s.pj[pi] = Time::ZERO;
                        s.pw[pi] = Time::ZERO;
                        s.pr[pi] = ctx.proc_wcet[pi];
                    }
                } else if touch_proc {
                    let mut earliest = Time::ZERO;
                    let mut worst = Time::ZERO;
                    for e in app.predecessors(p) {
                        let (o, w) = match e.message {
                            None => {
                                let src = e.source.index();
                                (
                                    s.po[src].saturating_add(ctx.proc_bcet[src]),
                                    s.po[src].saturating_add(s.pr[src]),
                                )
                            }
                            Some(m) => {
                                let mi = m.index();
                                match ctx.route[mi] {
                                    MessageRoute::TtcToTtc => {
                                        let a = frame_arrival(schedule, m);
                                        (a, a)
                                    }
                                    MessageRoute::EtcToEtc | MessageRoute::TtcToEtc => (
                                        s.can_o[mi].saturating_add(ctx.can_c[mi]),
                                        s.can_o[mi].saturating_add(s.can_r[mi]),
                                    ),
                                    MessageRoute::EtcToTtc => {
                                        (s.ttp_o[mi], s.ttp_o[mi].saturating_add(s.ttp_r[mi]))
                                    }
                                }
                            }
                        };
                        earliest = earliest.max(o);
                        worst = worst.max(w);
                    }
                    if set_offsets {
                        // Offsets derive from BCETs and the schedule only,
                        // so recomputing them is idempotent across passes.
                        s.po[pi] = earliest;
                    }
                    s.pj[pi] = worst.saturating_sub(s.po[pi]);
                }
                // Outgoing message legs of p (checked per leg: a clean
                // process can still feed a leg dirtied through its bus
                // band or a moved frame).
                for e in app.successors(p) {
                    let Some(m) = e.message else { continue };
                    let mi = m.index();
                    let (touch_leg, leg_offsets) = match mode {
                        WalkMode::Full { first } => (true, first),
                        WalkMode::Delta => (s.dirty.can[mi] || s.dirty.frame[mi], true),
                    };
                    if !touch_leg {
                        continue;
                    }
                    let enqueue_jitter = s.pr[pi].saturating_sub(ctx.proc_bcet[pi]);
                    match ctx.route[mi] {
                        MessageRoute::TtcToTtc => {
                            if leg_offsets {
                                s.arrival[mi] = frame_arrival(schedule, m);
                            }
                        }
                        MessageRoute::TtcToEtc => {
                            if leg_offsets {
                                // MBI arrival is deterministic; the gateway
                                // transfer process adds its response time as
                                // jitter (paper: J_m1 = r_T).
                                s.can_o[mi] = frame_arrival(schedule, m);
                                s.can_j[mi] = r_transfer;
                            }
                        }
                        MessageRoute::EtcToEtc => {
                            if leg_offsets {
                                s.can_o[mi] = s.po[pi].saturating_add(ctx.proc_bcet[pi]);
                            }
                            s.can_j[mi] = enqueue_jitter;
                        }
                        MessageRoute::EtcToTtc => {
                            if leg_offsets {
                                let enqueue_earliest = s.po[pi].saturating_add(ctx.proc_bcet[pi]);
                                s.can_o[mi] = enqueue_earliest;
                                // Earliest FIFO entry: after the CAN wire
                                // time.
                                s.ttp_o[mi] = enqueue_earliest.saturating_add(ctx.can_c[mi]);
                            }
                            s.can_j[mi] = enqueue_jitter;
                            // Worst FIFO entry: after the CAN leg response
                            // plus the transfer process.
                            s.ttp_j[mi] = s.can_r[mi]
                                .saturating_sub(ctx.can_c[mi])
                                .saturating_add(r_transfer);
                        }
                    }
                }
            }
        }
    }

    fn can_flow(&self, mi: usize) -> CanFlow {
        build_can_flow(self.ctx, self.s, mi)
    }

    fn fifo_flow(&self, mi: usize) -> FifoFlow {
        build_fifo_flow(self.ctx, self.s, mi)
    }

    fn task_flow(&self, pi: usize) -> TaskFlow {
        build_task_flow(self.ctx, self.s, pi)
    }

    /// CAN queuing delays over every message with a CAN leg (they all share
    /// the one bus, including frames produced by the gateway).
    ///
    /// Each flow's fixed point warm-starts from its delay of the previous
    /// holistic iteration: jitters only grow and offsets are constant, so
    /// the previous converged value lies below the new least fixed point and
    /// the climb resumes instead of restarting (identical result, fewer
    /// iterations).
    fn can_pass(&mut self) -> bool {
        let ctx = self.ctx;
        // Flows are built in bus-priority order (most urgent first), so
        // each flow's higher-priority set is the prefix before it and its
        // blocking bound is the precomputed suffix maximum.
        let n = self.s.can_order.len();
        self.s.can_flows.clear();
        for k in 0..n {
            let mi = self.s.can_order[k];
            let flow = self.can_flow(mi);
            self.s.can_flows.push(flow);
        }
        // Unchanged inputs ⇒ unchanged delays: skip the kernel entirely.
        if self.s.can_flows == self.s.prev_can_flows {
            return true;
        }
        for k in 0..n {
            let mi = self.s.can_order[k];
            let delay = mcs_can::queuing_delay_sorted(
                &self.s.can_flows,
                k,
                self.s.can_blocking[k],
                self.horizon,
                self.s.can_w[mi],
            );
            let s = &mut *self.s;
            let w = match delay {
                Some(w) => w,
                None => {
                    s.diverged = true;
                    self.horizon
                }
            };
            s.can_w[mi] = w;
            s.can_r[mi] = s.can_j[mi].saturating_add(w).saturating_add(ctx.can_c[mi]);
            if !matches!(ctx.route[mi], MessageRoute::EtcToTtc) {
                s.arrival[mi] = s.can_o[mi].saturating_add(s.can_r[mi]);
            }
        }
        let s = &mut *self.s;
        std::mem::swap(&mut s.prev_can_flows, &mut s.can_flows);
        false
    }

    /// Delta form of [`can_pass`](Holistic::can_pass): only the dirty
    /// entries of the (persistently maintained) sorted flow array are
    /// refreshed and — when any of them changed, or unconditionally on the
    /// first pass — only the dirty fixed points are re-run, through
    /// [`mcs_can::queuing_delays_sorted_subset`]. Clean flows' delays are
    /// already the least fixed point because no input of theirs changed.
    fn can_pass_delta(&mut self, first: bool) -> bool {
        let ctx = self.ctx;
        let n = self.s.can_order.len();
        // A flow's kernel inputs are exactly the sorted prefix before it
        // (plus its own fields), so only dirty flows at or below the topmost
        // changed position can produce a new delay this pass; everything
        // above re-confirms trivially and is skipped.
        let mut min_changed = if first { 0 } else { n };
        {
            let s = &mut *self.s;
            for k in 0..n {
                if !s.can_dirty_pos[k] {
                    continue;
                }
                let mi = s.can_order[k];
                let flow = build_can_flow(ctx, s, mi);
                if s.can_flows[k] != flow {
                    s.can_flows[k] = flow;
                    min_changed = min_changed.min(k);
                }
            }
        }
        // Unchanged inputs ⇒ unchanged delays (the first pass always runs:
        // the dirty delays were reset to the bottom behind the flows).
        if min_changed == n {
            return true;
        }
        {
            // Warm hints: each dirty flow in the affected suffix resumes
            // from its own previous iterate (zero on the first delta pass).
            let s = &mut *self.s;
            s.can_delay_pos.clear();
            s.can_delay_pos.resize(n, None);
            for k in min_changed..n {
                if s.can_dirty_pos[k] {
                    s.can_delay_pos[k] = Some(s.can_w[s.can_order[k]]);
                }
            }
            mcs_can::queuing_delays_sorted_subset(
                &s.can_flows,
                &s.can_blocking,
                &s.can_dirty_pos,
                min_changed,
                self.horizon,
                &mut s.can_delay_pos,
            );
        }
        let s = &mut *self.s;
        for k in min_changed..n {
            if !s.can_dirty_pos[k] {
                continue;
            }
            let mi = s.can_order[k];
            let w = match s.can_delay_pos[k] {
                Some(w) => w,
                None => {
                    s.diverged = true;
                    self.horizon
                }
            };
            s.can_w[mi] = w;
            s.can_r[mi] = s.can_j[mi].saturating_add(w).saturating_add(ctx.can_c[mi]);
            if !matches!(ctx.route[mi], MessageRoute::EtcToTtc) {
                s.arrival[mi] = s.can_o[mi].saturating_add(s.can_r[mi]);
            }
        }
        false
    }

    /// `Out_TTP` FIFO delays of ETC→TTC messages.
    fn fifo_pass(&mut self) -> bool {
        let ctx = self.ctx;
        self.s.fifo_flows.clear();
        for &mi in &ctx.fifo_ids {
            let flow = self.fifo_flow(mi);
            self.s.fifo_flows.push(flow);
        }
        // Unchanged inputs ⇒ unchanged delays: skip the kernel entirely.
        if self.s.fifo_flows == self.s.prev_fifo_flows {
            return true;
        }
        self.s.fifo_delays.clear();
        for k in 0..ctx.fifo_ids.len() {
            // The closed form warm-starts from the previous iteration's raw
            // delay (monotone operator); the occurrence bound cannot (its
            // departure is not monotone in the enqueue jitter).
            let delay = match self.fifo_bound {
                FifoBound::PaperClosedForm => fifo_delay_from(
                    &self.s.fifo_flows,
                    k,
                    &self.ttp_queue,
                    self.horizon,
                    self.s.fifo_warm[k],
                ),
                FifoBound::SlotOccurrence => {
                    fifo_delay_occurrence(&self.s.fifo_flows, k, &self.ttp_queue, self.horizon)
                }
            };
            if let Some(d) = delay {
                self.s.fifo_warm[k] = d.delay;
            }
            self.s.fifo_delays.push(delay);
        }
        let s = &mut *self.s;
        for (k, &mi) in ctx.fifo_ids.iter().enumerate() {
            let (w, backlog) = match s.fifo_delays[k] {
                Some(d) => (d.delay.saturating_add(self.grid_slack), d.backlog),
                None => {
                    s.diverged = true;
                    (self.horizon, s.fifo_flows[k].size_bytes.into())
                }
            };
            s.ttp_w[mi] = w;
            s.backlog[mi] = backlog;
            s.ttp_r[mi] = s.ttp_j[mi]
                .saturating_add(w)
                .saturating_add(self.ttp_queue.slot_duration);
            s.arrival[mi] = s.ttp_o[mi].saturating_add(s.ttp_r[mi]);
        }
        std::mem::swap(&mut s.prev_fifo_flows, &mut s.fifo_flows);
        false
    }

    /// Delta form of [`fifo_pass`](Holistic::fifo_pass): only the dirty
    /// entries of the flow array are refreshed, and only their FIFO fixed
    /// points re-run. The FIFO drains in CAN-priority order, so the closure
    /// marked the dirty leg and everything drained after it; a clean leg's
    /// backlog interference comes exclusively from clean (lower-rank) flows.
    fn fifo_pass_delta(&mut self, first: bool) -> bool {
        let ctx = self.ctx;
        // A FIFO leg's kernel inputs are the flows drained before it (lower
        // rank) plus its own fields, so only dirty legs at or above the
        // lowest changed rank can produce a new delay this pass.
        let mut min_changed_rank = if first { 0 } else { u64::MAX };
        {
            let s = &mut *self.s;
            for (k, &mi) in ctx.fifo_ids.iter().enumerate() {
                if !s.fifo_dirty_pos[k] {
                    continue;
                }
                let flow = build_fifo_flow(ctx, s, mi);
                if s.fifo_flows[k] != flow {
                    min_changed_rank = min_changed_rank.min(flow.rank);
                    s.fifo_flows[k] = flow;
                }
            }
        }
        // Unchanged inputs ⇒ unchanged delays (the first pass always runs).
        if min_changed_rank == u64::MAX {
            return true;
        }
        for k in 0..ctx.fifo_ids.len() {
            if !self.s.fifo_dirty_pos[k] || self.s.fifo_flows[k].rank < min_changed_rank {
                continue;
            }
            let delay = match self.fifo_bound {
                FifoBound::PaperClosedForm => fifo_delay_from(
                    &self.s.fifo_flows,
                    k,
                    &self.ttp_queue,
                    self.horizon,
                    self.s.fifo_warm[k],
                ),
                FifoBound::SlotOccurrence => {
                    fifo_delay_occurrence(&self.s.fifo_flows, k, &self.ttp_queue, self.horizon)
                }
            };
            let s = &mut *self.s;
            let mi = ctx.fifo_ids[k];
            let (w, backlog) = match delay {
                Some(d) => {
                    s.fifo_warm[k] = d.delay;
                    (d.delay.saturating_add(self.grid_slack), d.backlog)
                }
                None => {
                    s.diverged = true;
                    (self.horizon, s.fifo_flows[k].size_bytes.into())
                }
            };
            s.ttp_w[mi] = w;
            s.backlog[mi] = backlog;
            s.ttp_r[mi] = s.ttp_j[mi]
                .saturating_add(w)
                .saturating_add(self.ttp_queue.slot_duration);
            s.arrival[mi] = s.ttp_o[mi].saturating_add(s.ttp_r[mi]);
        }
        false
    }

    /// Preemption delays of processes sharing each ET CPU; the gateway CPU
    /// additionally hosts the transfer process `T` at the highest rank.
    fn cpu_pass(&mut self) -> bool {
        let ctx = self.ctx;
        let system = self.system;
        let mut stable = true;
        for (ni, et) in ctx.et_nodes.iter().enumerate() {
            // Tasks are assembled in rank order (transfer process first on
            // the gateway), so each task's higher-priority set is the
            // prefix before it.
            self.s.task_flows.clear();
            if et.is_gateway {
                let task = transfer_task(system);
                self.s.task_flows.push(task);
            }
            let offset = usize::from(et.is_gateway);
            for idx in 0..self.s.node_order[ni].len() {
                let pi = self.s.node_order[ni][idx].index();
                let task = self.task_flow(pi);
                self.s.task_flows.push(task);
            }
            // Unchanged inputs ⇒ unchanged delays: skip this CPU's kernel.
            if self.s.task_flows == self.s.prev_task_flows[ni] {
                continue;
            }
            stable = false;
            // Each process's busy window warm-starts from its previous
            // delay (see `can_pass`); the leading transfer task needs no
            // delay of its own (it has the highest rank).
            for idx in 0..self.s.node_order[ni].len() {
                let pi = self.s.node_order[ni][idx].index();
                let delay = crate::rta::interference_delay_sorted(
                    &self.s.task_flows,
                    offset + idx,
                    self.horizon,
                    self.s.pw[pi],
                );
                let s = &mut *self.s;
                let w = match delay {
                    Some(w) => w,
                    None => {
                        s.diverged = true;
                        self.horizon
                    }
                };
                s.pw[pi] = w;
                s.pr[pi] = s.pj[pi].saturating_add(w).saturating_add(ctx.proc_wcet[pi]);
            }
            let s = &mut *self.s;
            std::mem::swap(&mut s.prev_task_flows[ni], &mut s.task_flows);
        }
        stable
    }

    /// Delta form of [`cpu_pass`](Holistic::cpu_pass): only CPUs hosting a
    /// dirty process are visited; only the dirty entries of each visited
    /// CPU's (persistently staged) task array are refreshed, and only their
    /// busy windows re-run, through
    /// [`crate::rta::interference_delays_sorted_subset`].
    fn cpu_pass_delta(&mut self, first: bool) -> bool {
        let ctx = self.ctx;
        let mut stable = true;
        for (ni, et) in ctx.et_nodes.iter().enumerate() {
            if !self.s.dirty.nodes[ni] {
                continue;
            }
            let offset = usize::from(et.is_gateway);
            let len = offset + self.s.node_order[ni].len();
            // Same prefix argument as the CAN pass: a task's inputs are the
            // rank-sorted prefix before it.
            let mut min_changed = if first { 0 } else { len };
            {
                let s = &mut *self.s;
                for idx in 0..s.node_order[ni].len() {
                    let pi = s.node_order[ni][idx].index();
                    if !s.dirty.procs[pi] {
                        continue;
                    }
                    let task = build_task_flow(ctx, s, pi);
                    if s.prev_task_flows[ni][offset + idx] != task {
                        s.prev_task_flows[ni][offset + idx] = task;
                        min_changed = min_changed.min(offset + idx);
                    }
                }
            }
            // Unchanged inputs ⇒ unchanged delays (first pass always runs).
            if min_changed == len {
                continue;
            }
            stable = false;
            {
                let s = &mut *self.s;
                s.task_dirty_pos.clear();
                s.task_dirty_pos.resize(len, false);
                s.task_delay_pos.clear();
                s.task_delay_pos.resize(len, None);
                for idx in 0..s.node_order[ni].len() {
                    let pi = s.node_order[ni][idx].index();
                    if s.dirty.procs[pi] && offset + idx >= min_changed {
                        s.task_dirty_pos[offset + idx] = true;
                        s.task_delay_pos[offset + idx] = Some(s.pw[pi]);
                    }
                }
                crate::rta::interference_delays_sorted_subset(
                    &s.prev_task_flows[ni],
                    &s.task_dirty_pos,
                    min_changed,
                    self.horizon,
                    &mut s.task_delay_pos,
                );
            }
            let s = &mut *self.s;
            for idx in 0..s.node_order[ni].len() {
                let pi = s.node_order[ni][idx].index();
                if !s.task_dirty_pos[offset + idx] {
                    continue;
                }
                let w = match s.task_delay_pos[offset + idx] {
                    Some(w) => w,
                    None => {
                        s.diverged = true;
                        self.horizon
                    }
                };
                s.pw[pi] = w;
                s.pr[pi] = s.pj[pi].saturating_add(w).saturating_add(ctx.proc_wcet[pi]);
            }
        }
        stable
    }

    /// Delta form of [`queue_bounds`](Holistic::queue_bounds): queues with
    /// no member in the dirty cone keep their bound from the previous
    /// evaluation (their member flows and delays are provably unchanged).
    /// Only valid when the evaluation's final state extends the previous
    /// evaluation's final snapshot through the cone (the caller checks).
    pub(crate) fn queue_bounds_delta(&mut self) {
        let ctx = self.ctx;

        if ctx.out_can_ids.iter().any(|&mi| self.s.dirty.can[mi]) {
            let out_can = self.priority_queue_bound(&ctx.out_can_ids);
            self.s.queues.out_can = out_can;
        }

        // The map keys are stable across evaluations, so untouched queues
        // simply keep their entries.
        for (node, ids) in &ctx.out_node_ids {
            if ids.iter().any(|&mi| self.s.dirty.can[mi]) {
                let bound = self.priority_queue_bound(ids);
                self.s.queues.out_node.insert(*node, bound);
            }
        }

        if ctx.fifo_ids.iter().any(|&mi| self.s.dirty.ttp[mi]) {
            self.s.queues.out_ttp = ctx
                .fifo_ids
                .iter()
                .map(|&mi| self.s.backlog[mi])
                .max()
                .unwrap_or(0);
        }
    }

    /// Buffer bounds for `Out_CAN`, `Out_TTP` and every `Out_Ni`, left in
    /// `Scratch::queues`.
    pub(crate) fn queue_bounds(&mut self) {
        let ctx = self.ctx;

        // Out_CAN holds TTC→ETC traffic queued by the gateway.
        let out_can = self.priority_queue_bound(&ctx.out_can_ids);
        self.s.queues.out_can = out_can;

        // Out_Ni holds the CAN traffic originated by each CAN-sending node.
        self.s.queues.out_node.clear();
        for (node, ids) in &ctx.out_node_ids {
            let bound = self.priority_queue_bound(ids);
            self.s.queues.out_node.insert(*node, bound);
        }

        // Out_TTP: the FIFO bound — the worst backlog over all FIFO flows.
        self.s.queues.out_ttp = ctx
            .fifo_ids
            .iter()
            .map(|&mi| self.s.backlog[mi])
            .max()
            .unwrap_or(0);
    }

    fn priority_queue_bound(&mut self, ids: &[usize]) -> u64 {
        self.s.bound_flows.clear();
        self.s.bound_delays.clear();
        for &mi in ids {
            let flow = self.can_flow(mi);
            self.s.bound_flows.push(flow);
            let delay = Some(self.s.can_w[mi]);
            self.s.bound_delays.push(delay);
        }
        mcs_can::queue_size_bound(&self.s.bound_flows, &self.s.bound_delays, self.horizon)
    }
}

fn frame_arrival(schedule: &TtcSchedule, m: MessageId) -> Time {
    schedule.frame(m).map(|f| f.arrival).unwrap_or(Time::ZERO)
}

// Flow constructors as free functions over (context, scratch), so the delta
// passes can rebuild single entries while holding split borrows of the
// scratch; each kernel's input shape is assembled in exactly one place.

fn build_can_flow(ctx: &SystemContext, s: &Scratch, mi: usize) -> CanFlow {
    CanFlow {
        priority: s.msg_priority[mi].expect("validated configuration assigns CAN priorities"),
        period: ctx.msg_period[mi],
        jitter: s.can_j[mi],
        offset: s.can_o[mi],
        transaction: Some(ctx.msg_phase[mi]),
        transmission: ctx.can_c[mi],
        size_bytes: ctx.msg_size[mi],
        response: s.can_r[mi],
    }
}

fn build_fifo_flow(ctx: &SystemContext, s: &Scratch, mi: usize) -> FifoFlow {
    FifoFlow {
        rank: s.msg_priority[mi]
            .map(|p| u64::from(p.level()))
            .expect("validated configuration assigns CAN priorities"),
        period: ctx.msg_period[mi],
        jitter: s.ttp_j[mi],
        offset: s.ttp_o[mi],
        transaction: Some(ctx.msg_phase[mi]),
        size_bytes: ctx.msg_size[mi],
        response: s.ttp_r[mi],
    }
}

/// The gateway transfer process `T` as the highest-rank task of its CPU.
fn transfer_task(system: &System) -> TaskFlow {
    TaskFlow {
        rank: TRANSFER_RANK,
        period: system.gateway.transfer_period,
        jitter: Time::ZERO,
        offset: Time::ZERO,
        transaction: None,
        wcet: system.gateway.transfer_wcet,
        blocking: Time::ZERO,
        response: system.gateway.transfer_wcet,
    }
}

fn build_task_flow(ctx: &SystemContext, s: &Scratch, pi: usize) -> TaskFlow {
    TaskFlow {
        rank: app_rank(s.proc_priority[pi].expect("validated configuration assigns ET priorities")),
        period: ctx.proc_period[pi],
        jitter: s.pj[pi],
        offset: s.po[pi],
        transaction: Some(ctx.proc_phase[pi]),
        wcet: ctx.proc_wcet[pi],
        blocking: ctx.proc_blocking[pi],
        response: s.pr[pi],
    }
}
