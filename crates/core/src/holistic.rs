//! The holistic response-time analysis of the event-triggered side, given a
//! fixed TTC schedule (the paper's `ResponseTimeAnalysis(Γ, φ, π)`), solved
//! by one **value-driven worklist engine** shared by the full and the delta
//! (incremental) evaluation paths.
//!
//! For a fixed static schedule of the TTC (process start times and frame
//! placements), the analysis is a fixed point of the coupled equations of
//!
//! * offset/jitter propagation along the process graphs
//!   (`J_D(m) = r_m`, `O_B = max` over predecessor availabilities),
//! * CAN queuing delays of every message with a CAN leg (`mcs-can`),
//! * `Out_TTP` FIFO delays of ETC→TTC messages ([`crate::queues`]), and
//! * preemption delays of processes sharing each ET CPU ([`crate::rta`]).
//!
//! # The worklist engine
//!
//! Each analyzed **entity** — an ET process, a CAN leg, a FIFO leg — has a
//! local recomputation: re-derive its jitter from its predecessors' current
//! values, refresh its entry in the shared kernel input array, re-run its
//! kernel fixed point, and compare the externally visible result (the flow
//! entry plus the route-facing offset/response) against the previous one.
//! Only when a value actually **changed** are the entity's dependents
//! requeued:
//!
//! * the lower-priority entities on the same resource (their interference
//!   prefix contains the changed flow),
//! * the route successors (direct ET successors, the legs the process
//!   sources, the CAN leg's destination or its FIFO continuation), and
//! * for a FIFO leg, the legs drained after it.
//!
//! The worklist pops entities in a static dataflow order
//! ([`SystemContext::wl_entities`]: graphs in order, topological within each
//! graph, legs right after their source), so first visits resolve offsets
//! before any dependent reads them and propagation mostly runs forward;
//! cyclic couplings (bus ↔ CPU ↔ FIFO) simply requeue until quiescent.
//!
//! [`Holistic::run`] seeds the worklist with **every** entity from the
//! bottom of the lattice; [`Holistic::run_delta`] seeds it with the closed
//! dirty cone of [`crate::delta`], resetting only the cone to the bottom
//! while clean entities keep their loaded baseline values. The two public
//! evaluation paths are literally two seedings of the same loop.
//!
//! # Why the engine reaches the same least fixed point as chaotic iteration
//!
//! The state of the fixed point is the vector of jitters, queuing/busy
//! delays and responses (offsets are **not** part of the lattice: they
//! derive from the schedule and BCETs only, and the seeding pass resolves
//! every dirty entity's offset in topological order before any kernel
//! runs). Over that state every operator is **monotone**: interference
//! terms grow with peer jitters and responses (a grown response can only
//! *disable* an offset-phase reduction, never enable one), FIFO backlogs
//! grow with enqueue jitters, and the horizon clamp of a diverged kernel is
//! monotone too. Starting from the lattice bottom, every entity
//! recomputation therefore moves the state **upward but never above** the
//! least fixed point — which makes per-entity warm starts sound — and any
//! order of recomputations that keeps going until no input of any entity
//! has changed since its last visit converges to the **same least fixed
//! point** as the pass-based chaotic iteration (Kleene iteration of a
//! monotone map on a lattice of finite height). Value-gated requeueing is
//! exactly that stopping rule: an entity is revisited precisely when one of
//! its inputs changed, so an empty worklist certifies global stability.
//!
//! The occurrence-based FIFO bound is the one non-monotone operator (its
//! blocking term shrinks as the enqueue jitter grows past a round
//! boundary). It is therefore evaluated as a **stateless function** of its
//! inputs on every visit — never warm-started — so a converged entry always
//! equals the cold fixed point at its final inputs, independent of the
//! visit order; the delta path inherits bit-identity for it the same way
//! the pass-based implementation did.
//!
//! On the delta path, clean entities keep their previously converged values
//! untouched: the dependency closure guarantees every input of a clean
//! entity is clean, so the clean part of the old least fixed point solves
//! the new equations and the dirty part re-climbs against it from the
//! bottom — reaching the least fixed point of the *whole* new system (the
//! standard restriction argument; see [`crate::delta`]).
//!
//! The engine operates entirely on the reusable state of [`crate::context`]:
//! the immutable `SystemContext` tables and the `Scratch` vectors, which it
//! clears (never reallocates) on entry.

use mcs_can::CanFlow;
use mcs_model::{GraphId, MessageId, MessageRoute, Priority, ProcessId, System, Time};
use mcs_ttp::TtcSchedule;

use crate::context::{Scratch, SystemContext, WlEntity};
use crate::multicluster::FifoBound;
use crate::queues::{fifo_delay_from, fifo_delay_occurrence, FifoFlow, TtpQueueParams};
use crate::rta::TaskFlow;

/// Ranks: the gateway transfer process outranks all application processes.
fn app_rank(priority: Priority) -> u64 {
    1 << 32 | u64::from(priority.level())
}
const TRANSFER_RANK: u64 = 0;

/// One holistic analysis pass over a fixed TTC schedule, reading the shared
/// [`SystemContext`] and mutating only the [`Scratch`].
pub(crate) struct Holistic<'a> {
    pub ctx: &'a SystemContext,
    pub system: &'a System,
    pub schedule: &'a TtcSchedule,
    pub ttp_queue: TtpQueueParams,
    /// One extra round of FIFO pessimism when the TDMA grid does not
    /// re-align with the hyper-period (the gateway slot's phase then drifts
    /// across activations).
    pub grid_slack: Time,
    pub horizon: Time,
    pub max_iterations: u32,
    pub fifo_bound: FifoBound,
    pub s: &'a mut Scratch,
}

impl Holistic<'_> {
    /// Runs the fixed point to convergence (or the recomputation budget),
    /// leaving the converged timing state in the scratch; queue bounds are
    /// computed separately by [`queue_bounds`](Holistic::queue_bounds) (the
    /// evaluator needs them only for the final outer iteration). Returns
    /// whether the engine reached quiescence (as opposed to exhausting the
    /// budget).
    ///
    /// This is the **full** seeding of the worklist engine: every entity
    /// restarts from the bottom of the lattice and joins the worklist; see
    /// the module docs for the convergence argument.
    pub(crate) fn run(&mut self) -> bool {
        self.reset();
        self.s.dirty.mark_all(self.ctx);
        self.seed_offsets_and_jitters();
        self.stage_kernel_inputs();
        self.solve()
    }

    /// Restricted fixed point over the dirty cone of `Scratch::dirty`
    /// (see [`crate::delta`]): the scratch holds the converged analysis of
    /// this exact schedule under the delta base configuration (loaded from
    /// the outer iteration's snapshot); clean entities keep those values,
    /// dirty entities restart from the bottom of the lattice and re-climb
    /// against the fixed clean inputs — reaching the same least fixed point
    /// a full re-analysis would, in a fraction of the kernel work. This is
    /// the **delta** seeding of the same worklist engine [`run`] drives.
    /// Returns whether quiescence was reached within the budget; on `false`
    /// the caller must fall back to the full analysis (the scratch is
    /// mid-climb).
    ///
    /// [`run`]: Holistic::run
    pub(crate) fn run_delta(&mut self) -> bool {
        let ctx = self.ctx;
        // No-op probe: for a pure priority permutation, only the seed
        // position spans' equations changed. Recompute those few fixed
        // points cold against the loaded baseline; if every one reproduces
        // its snapshot value, nothing in the cone can move — the baseline
        // *is* this configuration's analysis.
        if self.s.dirty.probe_ok {
            self.stage_kernel_inputs();
            if self.probe_unchanged() {
                return true;
            }
        }
        {
            // Dirty entities restart from the bottom of the fixed-point
            // lattice. Offsets are *kept* here and re-derived by the
            // seeding pass below: they come from the schedule and BCETs
            // only, but a schedule rebuild may have moved the placements
            // under a dirty entity.
            let s = &mut *self.s;
            for pi in 0..s.dirty.procs.len() {
                if s.dirty.procs[pi] {
                    s.pj[pi] = Time::ZERO;
                    s.pw[pi] = Time::ZERO;
                    s.pr[pi] = ctx.proc_wcet[pi];
                }
            }
            for mi in 0..s.dirty.can.len() {
                if s.dirty.can[mi] {
                    // `can_j` is left in place: the seeding pass recomputes
                    // it from the (reset) sender state before any kernel
                    // reads it, and for TTC→ETC legs it is the constant
                    // transfer-process response.
                    s.can_w[mi] = Time::ZERO;
                    s.can_r[mi] = Time::ZERO;
                }
            }
            for &mi in &ctx.fifo_ids {
                if s.dirty.ttp[mi] {
                    // The FIFO leg restarts from the bottom as well.
                    s.ttp_w[mi] = Time::ZERO;
                    s.ttp_r[mi] = Time::ZERO;
                    s.backlog[mi] = 0;
                    s.fifo_warm[ctx.fifo_pos[mi]] = Time::ZERO;
                }
            }
        }
        self.seed_offsets_and_jitters();
        // (Re)stage the kernel input arrays from the current scratch state:
        // clean entries carry their baseline (= new least fixed point)
        // values, dirty entries their freshly walked bottom-side values —
        // everything at or below the new least fixed point, which is what
        // licenses the per-entity warm starts. The probe path staged the
        // arrays from the unreset baseline; after a failed probe the dirty
        // entries must be re-staged from the reset state.
        self.stage_kernel_inputs();
        self.solve()
    }

    /// Seeds the offsets and the initial jitters of every dirty entity by
    /// one topological walk over the graphs containing dirty entities.
    ///
    /// Offsets derive from the schedule and BCETs only, so after this pass
    /// they are final for the whole run — resolving them *before* any
    /// kernel runs is load-bearing: interference is not monotone in the
    /// offsets (phase separations), so a kernel must never observe a stale
    /// or unresolved peer offset.
    fn seed_offsets_and_jitters(&mut self) {
        for gi in 0..self.ctx.n_graphs {
            if self.s.dirty.graphs[gi] {
                self.walk_graph(GraphId::new(gi as u32));
            }
        }
    }

    /// The worklist loop: seed every dirty entity, then process **waves**
    /// — each wave visits its pending entities in ascending key order
    /// (Gauss–Seidel: a recomputation reads the latest values of everything
    /// visited before it) and value changes requeue dependents. A dependent
    /// still pending *later in the current wave* needs no requeue (it will
    /// read the fresh arrays when its turn comes); one already visited is
    /// deferred to the next wave, so the reactions to all of a wave's
    /// changes are batched into one revisit instead of one revisit per
    /// change. Quiescence — an empty next wave — certifies that no entity
    /// has an input changed since its last visit. Returns `false` when the
    /// wave budget (`max_iterations`, mirroring the pass-based cap) is
    /// exhausted mid-climb.
    fn solve(&mut self) -> bool {
        let ctx = self.ctx;
        let n = ctx.wl_entities.len();
        {
            let s = &mut *self.s;
            s.wl_pending.clear();
            s.wl_pending.resize(n, false);
            s.wl_next_pending.clear();
            s.wl_next_pending.resize(n, false);
            s.wl_current.clear();
            s.wl_next.clear();
            for key in 0..n as u32 {
                let dirty = match ctx.wl_entities[key as usize] {
                    WlEntity::Proc(pi) => s.dirty.procs[pi as usize],
                    WlEntity::Can(mi) => s.dirty.can[mi as usize],
                    WlEntity::Fifo(mi) => s.dirty.ttp[mi as usize],
                };
                if dirty {
                    s.wl_pending[key as usize] = true;
                    s.wl_current.push(key);
                }
            }
        }
        for _ in 0..self.max_iterations {
            if self.s.wl_current.is_empty() {
                return true;
            }
            let mut i = 0;
            while i < self.s.wl_current.len() {
                let key = self.s.wl_current[i];
                i += 1;
                self.s.wl_pending[key as usize] = false;
                match ctx.wl_entities[key as usize] {
                    WlEntity::Proc(pi) => self.recompute_proc(pi as usize),
                    WlEntity::Can(mi) => self.recompute_can(mi as usize),
                    WlEntity::Fifo(mi) => self.recompute_fifo(mi as usize),
                }
            }
            // Next wave: the deferred requeues, in key order.
            let s = &mut *self.s;
            s.wl_current.clear();
            std::mem::swap(&mut s.wl_current, &mut s.wl_next);
            s.wl_current.sort_unstable();
            std::mem::swap(&mut s.wl_pending, &mut s.wl_next_pending);
        }
        self.s.wl_current.is_empty()
    }

    /// Recomputes one ET process: jitter from the predecessors' current
    /// values, busy window against the CPU's rank prefix, then requeue the
    /// dependents whose inputs the result actually changed.
    fn recompute_proc(&mut self, pi: usize) {
        let ctx = self.ctx;
        let app = &self.system.application;
        let schedule = self.schedule;
        let p = ProcessId::new(pi as u32);
        // mcs-lint: allow(panic-policy) -- wl_entities only lists ET-hosted processes as process entities
        let ni = ctx.proc_et_node[pi].expect("worklist processes are ET-hosted") as usize;
        let offset = usize::from(ctx.et_nodes[ni].is_gateway);
        let idx = offset + self.s.node_pos[pi];

        // Availability of the triggering data: earliest (offset) and worst
        // case (jitter) over the predecessors. Recomputing the offset is
        // idempotent — it reads only fixed quantities.
        let (earliest, worst) = availability(ctx, self.s, app, schedule, p);
        let s = &mut *self.s;
        s.po[pi] = earliest;
        s.pj[pi] = worst.saturating_sub(earliest);

        // Busy window against the rank prefix; own jitter/offset must be
        // staged before the kernel reads `tasks[idx]` as "me".
        let old = s.task_arrays[ni][idx];
        s.task_arrays[ni][idx].jitter = s.pj[pi];
        s.task_arrays[ni][idx].offset = s.po[pi];
        let delay =
            crate::rta::interference_delay_sorted(&s.task_arrays[ni], idx, self.horizon, s.pw[pi]);
        let w = match delay {
            Some(w) => w,
            None => {
                s.diverged = true;
                self.horizon
            }
        };
        s.pw[pi] = w;
        s.pr[pi] = s.pj[pi].saturating_add(w).saturating_add(ctx.proc_wcet[pi]);
        let new = build_task_flow(ctx, s, pi);
        s.task_arrays[ni][idx] = new;
        if new == old {
            return;
        }
        // The priority band below on this CPU sees the changed flow in its
        // interference prefix.
        let Scratch {
            node_order,
            node_pos,
            dirty,
            wl_pending,
            wl_next_pending,
            wl_next,
            ..
        } = s;
        for q in &node_order[ni][node_pos[pi] + 1..] {
            let qi = q.index();
            if dirty.procs[qi] {
                push(wl_pending, wl_next_pending, wl_next, ctx.wl_key_proc[qi]);
            }
        }
        // Route successors read the offset (earliest availability) and the
        // response (worst availability / enqueue jitter).
        if new.response != old.response || new.offset != old.offset {
            for &q in &ctx.proc_direct_succ[pi] {
                if dirty.procs[q as usize] {
                    push(
                        wl_pending,
                        wl_next_pending,
                        wl_next,
                        ctx.wl_key_proc[q as usize],
                    );
                }
            }
            for &mi in &ctx.proc_out_et_msgs[pi] {
                if dirty.can[mi as usize] {
                    push(
                        wl_pending,
                        wl_next_pending,
                        wl_next,
                        ctx.wl_key_can[mi as usize],
                    );
                }
            }
        }
    }

    /// Recomputes one CAN leg: enqueue offset/jitter from the sender's
    /// current state, queuing delay against the bus priority prefix, then
    /// requeue the dependents the result actually changed.
    fn recompute_can(&mut self, mi: usize) {
        let ctx = self.ctx;
        let r_transfer = self.system.gateway.transfer_response();
        let k = self.s.can_pos[mi];
        stage_leg(
            ctx,
            self.s,
            self.schedule,
            r_transfer,
            ctx.msg_src[mi] as usize,
            mi,
        );
        let s = &mut *self.s;
        let old = s.can_flows[k];
        s.can_flows[k].jitter = s.can_j[mi];
        s.can_flows[k].offset = s.can_o[mi];
        let delay = mcs_can::queuing_delay_sorted(
            &s.can_flows,
            k,
            s.can_blocking[k],
            self.horizon,
            s.can_w[mi],
        );
        let w = match delay {
            Some(w) => w,
            None => {
                s.diverged = true;
                self.horizon
            }
        };
        s.can_w[mi] = w;
        s.can_r[mi] = s.can_j[mi].saturating_add(w).saturating_add(ctx.can_c[mi]);
        if !matches!(ctx.route[mi], MessageRoute::EtcToTtc) {
            s.arrival[mi] = s.can_o[mi].saturating_add(s.can_r[mi]);
        }
        let new = build_can_flow(ctx, s, mi);
        s.can_flows[k] = new;
        if new == old {
            return;
        }
        let Scratch {
            can_order,
            dirty,
            wl_pending,
            wl_next_pending,
            wl_next,
            ..
        } = s;
        // The bus band below sees the changed flow in its prefix.
        for &mj in &can_order[k + 1..] {
            if dirty.can[mj] {
                push(wl_pending, wl_next_pending, wl_next, ctx.wl_key_can[mj]);
            }
        }
        // Route successor: the destination's jitter, or the FIFO leg this
        // CAN leg feeds.
        if new.response != old.response || new.offset != old.offset {
            match ctx.route[mi] {
                MessageRoute::EtcToTtc => {
                    if dirty.ttp[mi] {
                        push(wl_pending, wl_next_pending, wl_next, ctx.wl_key_fifo[mi]);
                    }
                }
                MessageRoute::EtcToEtc | MessageRoute::TtcToEtc => {
                    let dest = ctx.msg_dest[mi] as usize;
                    if !ctx.proc_is_tt[dest] && dirty.procs[dest] {
                        push(wl_pending, wl_next_pending, wl_next, ctx.wl_key_proc[dest]);
                    }
                }
                // mcs-lint: allow(panic-policy) -- TTC-to-TTC legs never become worklist entities (wl_entities skips them)
                MessageRoute::TtcToTtc => unreachable!("no worklist entity"),
            }
        }
    }

    /// Recomputes one `Out_TTP` FIFO leg: enqueue jitter from the CAN leg's
    /// current response, FIFO delay and backlog, then requeue the legs
    /// drained after it if the result changed. (The leg's arrival bounds a
    /// TT release — an input of the *outer* schedule↔analysis fixed point,
    /// re-derived by the trajectory replay, not by this engine.)
    fn recompute_fifo(&mut self, mi: usize) {
        let ctx = self.ctx;
        let r_transfer = self.system.gateway.transfer_response();
        let k = ctx.fifo_pos[mi];
        let s = &mut *self.s;
        // Worst FIFO entry: after the CAN leg response plus the transfer
        // process.
        s.ttp_j[mi] = s.can_r[mi]
            .saturating_sub(ctx.can_c[mi])
            .saturating_add(r_transfer);
        let old = s.fifo_flows[k];
        s.fifo_flows[k].jitter = s.ttp_j[mi];
        s.fifo_flows[k].offset = s.ttp_o[mi];
        // The closed form warm-starts from the previous iterate (monotone
        // operator); the occurrence bound is a stateless function of its
        // inputs (its blocking term is not monotone in the enqueue jitter).
        let delay = match self.fifo_bound {
            FifoBound::PaperClosedForm => fifo_delay_from(
                &s.fifo_flows,
                k,
                &self.ttp_queue,
                self.horizon,
                s.fifo_warm[k],
            ),
            FifoBound::SlotOccurrence => {
                fifo_delay_occurrence(&s.fifo_flows, k, &self.ttp_queue, self.horizon)
            }
        };
        let (w, backlog) = match delay {
            Some(d) => {
                s.fifo_warm[k] = d.delay;
                (d.delay.saturating_add(self.grid_slack), d.backlog)
            }
            None => {
                s.diverged = true;
                (self.horizon, s.fifo_flows[k].size_bytes.into())
            }
        };
        s.ttp_w[mi] = w;
        s.backlog[mi] = backlog;
        s.ttp_r[mi] = s.ttp_j[mi]
            .saturating_add(w)
            .saturating_add(self.ttp_queue.slot_duration);
        s.arrival[mi] = s.ttp_o[mi].saturating_add(s.ttp_r[mi]);
        let new = build_fifo_flow(ctx, s, mi);
        s.fifo_flows[k] = new;
        if new == old {
            return;
        }
        // The FIFO drains in CAN-priority order: every leg drained after
        // this one (higher rank) counts it among the bytes queued ahead.
        let Scratch {
            dirty,
            wl_pending,
            wl_next_pending,
            wl_next,
            fifo_flows,
            ..
        } = s;
        for (j, &mj) in ctx.fifo_ids.iter().enumerate() {
            if j != k && fifo_flows[j].rank > new.rank && dirty.ttp[mj] {
                push(wl_pending, wl_next_pending, wl_next, ctx.wl_key_fifo[mj]);
            }
        }
    }

    /// Probes the equation-dirty spans against the loaded baseline: every
    /// affected fixed point is recomputed cold and compared to its snapshot
    /// value. `true` means the whole dirty cone is provably value-clean.
    /// Requires [`stage_kernel_inputs`](Holistic::stage_kernel_inputs) to
    /// have staged the kernel arrays from the (unmodified) baseline state.
    ///
    /// Soundness (why a passing probe implies the baseline is the *least*
    /// fixed point of the new equations, not merely *a* fixed point): a
    /// priority permutation only adds or removes interference terms in the
    /// span entities' equations. A removed term that reproduces the old
    /// value must have contributed zero at the old state, and an added term
    /// must evaluate to zero there (otherwise the cold climb would pass the
    /// old value and mismatch). Every term is monotone in the state, so a
    /// term that is zero at the old state is zero on the whole order
    /// interval below it — the new fixed-point map coincides with the old
    /// one on the entire climb range, and the from-bottom iterations (and
    /// hence the least fixed points) are identical.
    fn probe_unchanged(&mut self) -> bool {
        let ctx = self.ctx;
        let s = &*self.s;
        if let Some((lo, hi)) = s.dirty.eq_can_span {
            for k in lo..=hi {
                let mi = s.can_order[k];
                let w = mcs_can::queuing_delay_sorted(
                    &s.can_flows,
                    k,
                    s.can_blocking[k],
                    self.horizon,
                    Time::ZERO,
                );
                if w != Some(s.can_w[mi]) {
                    return false;
                }
            }
        }
        if let Some((lo, hi)) = s.dirty.eq_fifo_span {
            for (k, &mi) in ctx.fifo_ids.iter().enumerate() {
                let rank = s.fifo_flows[k].rank;
                if rank < lo || rank > hi {
                    continue;
                }
                let delay = match self.fifo_bound {
                    FifoBound::PaperClosedForm => {
                        fifo_delay_from(&s.fifo_flows, k, &self.ttp_queue, self.horizon, Time::ZERO)
                    }
                    FifoBound::SlotOccurrence => {
                        fifo_delay_occurrence(&s.fifo_flows, k, &self.ttp_queue, self.horizon)
                    }
                };
                let reproduced = delay.is_some_and(|d| {
                    d.delay.saturating_add(self.grid_slack) == s.ttp_w[mi]
                        && d.backlog == s.backlog[mi]
                });
                if !reproduced {
                    return false;
                }
            }
        }
        for (ni, et) in ctx.et_nodes.iter().enumerate() {
            let Some((lo, hi)) = s.dirty.eq_node_span[ni] else {
                continue;
            };
            let offset = usize::from(et.is_gateway);
            for idx in lo..=hi {
                let pi = s.node_order[ni][idx].index();
                let w = crate::rta::interference_delay_sorted(
                    &s.task_arrays[ni],
                    offset + idx,
                    self.horizon,
                    Time::ZERO,
                );
                if w != Some(s.pw[pi]) {
                    return false;
                }
            }
        }
        true
    }

    /// Stages the kernel input arrays from the current scratch state: the
    /// sorted CAN flows, the FIFO flows, and — for each CPU hosting a dirty
    /// process — the rank-ordered task array. Every entry is at or below
    /// the least fixed point afterwards (clean entries *are* their LFP
    /// values, dirty entries carry reset bottom-side values), which is the
    /// invariant that keeps warm starts sound.
    fn stage_kernel_inputs(&mut self) {
        let ctx = self.ctx;
        let system = self.system;
        let n = self.s.can_order.len();
        self.s.can_flows.clear();
        for k in 0..n {
            let mi = self.s.can_order[k];
            let flow = self.can_flow(mi);
            self.s.can_flows.push(flow);
        }
        self.s.fifo_flows.clear();
        for &mi in &ctx.fifo_ids {
            let flow = self.fifo_flow(mi);
            self.s.fifo_flows.push(flow);
        }
        self.s.task_arrays.resize(ctx.et_nodes.len(), Vec::new());
        for (ni, et) in ctx.et_nodes.iter().enumerate() {
            if !self.s.dirty.nodes[ni] {
                continue;
            }
            self.s.task_arrays[ni].clear();
            if et.is_gateway {
                let task = transfer_task(system);
                self.s.task_arrays[ni].push(task);
            }
            for idx in 0..self.s.node_order[ni].len() {
                let pi = self.s.node_order[ni][idx].index();
                let task = self.task_flow(pi);
                self.s.task_arrays[ni].push(task);
            }
        }
    }

    /// Clears the scratch to the initial fixed-point state (`r_i = C_i`,
    /// everything else zero), reusing the allocations.
    fn reset(&mut self) {
        let app = &self.system.application;
        let n_p = app.processes().len();
        let n_m = app.messages().len();
        let s = &mut *self.s;
        for v in [&mut s.po, &mut s.pj, &mut s.pw, &mut s.pr] {
            v.clear();
            v.resize(n_p, Time::ZERO);
        }
        for v in [
            &mut s.can_o,
            &mut s.can_j,
            &mut s.can_w,
            &mut s.can_r,
            &mut s.ttp_o,
            &mut s.ttp_j,
            &mut s.ttp_w,
            &mut s.ttp_r,
            &mut s.arrival,
        ] {
            v.clear();
            v.resize(n_m, Time::ZERO);
        }
        s.backlog.clear();
        s.backlog.resize(n_m, 0);
        s.fifo_warm.clear();
        s.fifo_warm.resize(self.ctx.fifo_ids.len(), Time::ZERO);
        s.diverged = false;
        s.pr.copy_from_slice(&self.ctx.proc_wcet);
    }

    /// One topological walk of `graph`, (re)resolving the offsets and the
    /// current-state jitters of its dirty entities. Clean entities provably
    /// kept every input, so their offsets and jitters stand.
    fn walk_graph(&mut self, graph: GraphId) {
        let system = self.system;
        let ctx = self.ctx;
        let app = &system.application;
        let schedule = self.schedule;
        let r_transfer = system.gateway.transfer_response();
        for &p in app.topological_order(graph) {
            let pi = p.index();
            let touch_proc = self.s.dirty.procs[pi];
            if ctx.proc_is_tt[pi] {
                if touch_proc {
                    // Fixed by the schedule table for this whole run.
                    let s = &mut *self.s;
                    s.po[pi] = schedule
                        .start(p)
                        // mcs-lint: allow(panic-policy) -- a schedule is only adopted after the list scheduler placed every TT process
                        .expect("TT process placed by the list scheduler");
                    s.pj[pi] = Time::ZERO;
                    s.pw[pi] = Time::ZERO;
                    s.pr[pi] = ctx.proc_wcet[pi];
                }
            } else if touch_proc {
                let (earliest, worst) = availability(ctx, self.s, app, schedule, p);
                // Offsets derive from BCETs and the schedule only, so
                // recomputing them is idempotent across visits.
                let s = &mut *self.s;
                s.po[pi] = earliest;
                s.pj[pi] = worst.saturating_sub(earliest);
            }
            // Outgoing message legs of p (checked per leg: a clean
            // process can still feed a leg dirtied through its bus
            // band or a moved frame).
            for e in app.successors(p) {
                let Some(m) = e.message else { continue };
                let mi = m.index();
                if self.s.dirty.can[mi] || self.s.dirty.frame[mi] {
                    stage_leg(ctx, self.s, schedule, r_transfer, pi, mi);
                }
            }
        }
    }

    fn can_flow(&self, mi: usize) -> CanFlow {
        build_can_flow(self.ctx, self.s, mi)
    }

    fn fifo_flow(&self, mi: usize) -> FifoFlow {
        build_fifo_flow(self.ctx, self.s, mi)
    }

    fn task_flow(&self, pi: usize) -> TaskFlow {
        build_task_flow(self.ctx, self.s, pi)
    }

    /// Delta form of [`queue_bounds`](Holistic::queue_bounds): queues with
    /// no member in the dirty cone keep their bound from the previous
    /// evaluation (their member flows and delays are provably unchanged).
    /// Only valid when the evaluation's final state extends the previous
    /// evaluation's final snapshot through the cone (the caller checks).
    pub(crate) fn queue_bounds_delta(&mut self) {
        let ctx = self.ctx;

        if ctx.out_can_ids.iter().any(|&mi| self.s.dirty.can[mi]) {
            let out_can = self.priority_queue_bound(&ctx.out_can_ids);
            self.s.queues.out_can = out_can;
        }

        // The map keys are stable across evaluations, so untouched queues
        // simply keep their entries.
        for (node, ids) in &ctx.out_node_ids {
            if ids.iter().any(|&mi| self.s.dirty.can[mi]) {
                let bound = self.priority_queue_bound(ids);
                self.s.queues.out_node.insert(*node, bound);
            }
        }

        if ctx.fifo_ids.iter().any(|&mi| self.s.dirty.ttp[mi]) {
            self.s.queues.out_ttp = ctx
                .fifo_ids
                .iter()
                .map(|&mi| self.s.backlog[mi])
                .max()
                .unwrap_or(0);
        }
    }

    /// Buffer bounds for `Out_CAN`, `Out_TTP` and every `Out_Ni`, left in
    /// `Scratch::queues`.
    pub(crate) fn queue_bounds(&mut self) {
        let ctx = self.ctx;

        // Out_CAN holds TTC→ETC traffic queued by the gateway.
        let out_can = self.priority_queue_bound(&ctx.out_can_ids);
        self.s.queues.out_can = out_can;

        // Out_Ni holds the CAN traffic originated by each CAN-sending node.
        self.s.queues.out_node.clear();
        for (node, ids) in &ctx.out_node_ids {
            let bound = self.priority_queue_bound(ids);
            self.s.queues.out_node.insert(*node, bound);
        }

        // Out_TTP: the FIFO bound — the worst backlog over all FIFO flows.
        self.s.queues.out_ttp = ctx
            .fifo_ids
            .iter()
            .map(|&mi| self.s.backlog[mi])
            .max()
            .unwrap_or(0);
    }

    fn priority_queue_bound(&mut self, ids: &[usize]) -> u64 {
        self.s.bound_flows.clear();
        self.s.bound_delays.clear();
        for &mi in ids {
            let flow = self.can_flow(mi);
            self.s.bound_flows.push(flow);
            let delay = Some(self.s.can_w[mi]);
            self.s.bound_delays.push(delay);
        }
        mcs_can::queue_size_bound(&self.s.bound_flows, &self.s.bound_delays, self.horizon)
    }
}

/// Requeues the dependent `key` after one of its inputs changed: a no-op
/// when it is still pending later in the current wave (it will read the
/// fresh arrays when visited), otherwise enqueued for the next wave, once.
fn push(pending: &[bool], next_pending: &mut [bool], next: &mut Vec<u32>, key: u32) {
    debug_assert_ne!(key, u32::MAX, "dependent without a worklist entity");
    if !pending[key as usize] && !next_pending[key as usize] {
        next_pending[key as usize] = true;
        next.push(key);
    }
}

fn frame_arrival(schedule: &TtcSchedule, m: MessageId) -> Time {
    schedule.frame(m).map(|f| f.arrival).unwrap_or(Time::ZERO)
}

/// Availability of `p`'s triggering data from the current state: the
/// earliest instant it can exist (predecessor offset + BCET + minimal
/// transmission — `p`'s offset) and the worst-case instant (whose gap to
/// the offset is `p`'s jitter). The one formula behind the seeding walk
/// and the per-entity recomputation — both must read predecessors
/// identically or the engine's bit-identity contract breaks.
fn availability(
    ctx: &SystemContext,
    s: &Scratch,
    app: &mcs_model::Application,
    schedule: &TtcSchedule,
    p: ProcessId,
) -> (Time, Time) {
    let mut earliest = Time::ZERO;
    let mut worst = Time::ZERO;
    for e in app.predecessors(p) {
        let (o, w) = match e.message {
            None => {
                let src = e.source.index();
                (
                    s.po[src].saturating_add(ctx.proc_bcet[src]),
                    s.po[src].saturating_add(s.pr[src]),
                )
            }
            Some(m) => {
                let mi = m.index();
                match ctx.route[mi] {
                    MessageRoute::TtcToTtc => {
                        let a = frame_arrival(schedule, m);
                        (a, a)
                    }
                    MessageRoute::EtcToEtc | MessageRoute::TtcToEtc => (
                        s.can_o[mi].saturating_add(ctx.can_c[mi]),
                        s.can_o[mi].saturating_add(s.can_r[mi]),
                    ),
                    MessageRoute::EtcToTtc => {
                        (s.ttp_o[mi], s.ttp_o[mi].saturating_add(s.ttp_r[mi]))
                    }
                }
            }
        };
        earliest = earliest.max(o);
        worst = worst.max(w);
    }
    (earliest, worst)
}

/// Stages the sender-derived inputs of message `mi`'s legs from the current
/// state of its source process `src_pi` (route-shaped): frame-derived
/// arrivals and offsets, CAN enqueue offset/jitter, FIFO entry offset and
/// enqueue jitter. Shared by the seeding walk and the CAN-leg
/// recomputation — the staged quantities must be derived identically on
/// both paths.
fn stage_leg(
    ctx: &SystemContext,
    s: &mut Scratch,
    schedule: &TtcSchedule,
    r_transfer: Time,
    src_pi: usize,
    mi: usize,
) {
    let m = MessageId::new(mi as u32);
    let enqueue_jitter = s.pr[src_pi].saturating_sub(ctx.proc_bcet[src_pi]);
    match ctx.route[mi] {
        MessageRoute::TtcToTtc => {
            s.arrival[mi] = frame_arrival(schedule, m);
        }
        MessageRoute::TtcToEtc => {
            // MBI arrival is deterministic; the gateway transfer process
            // adds its response time as jitter (paper: J_m1 = r_T).
            s.can_o[mi] = frame_arrival(schedule, m);
            s.can_j[mi] = r_transfer;
        }
        MessageRoute::EtcToEtc => {
            s.can_o[mi] = s.po[src_pi].saturating_add(ctx.proc_bcet[src_pi]);
            s.can_j[mi] = enqueue_jitter;
        }
        MessageRoute::EtcToTtc => {
            let enqueue_earliest = s.po[src_pi].saturating_add(ctx.proc_bcet[src_pi]);
            s.can_o[mi] = enqueue_earliest;
            // Earliest FIFO entry: after the CAN wire time.
            s.ttp_o[mi] = enqueue_earliest.saturating_add(ctx.can_c[mi]);
            s.can_j[mi] = enqueue_jitter;
            // Worst FIFO entry: after the CAN leg response plus the
            // transfer process. (The FIFO recomputation re-derives this
            // from the post-kernel CAN response; staging it here from the
            // pre-kernel response is value-identical — the FIFO leg is
            // requeued whenever the CAN response changes.)
            s.ttp_j[mi] = s.can_r[mi]
                .saturating_sub(ctx.can_c[mi])
                .saturating_add(r_transfer);
        }
    }
}

// Flow constructors as free functions over (context, scratch), so the
// recomputations can rebuild single entries while holding split borrows of
// the scratch; each kernel's input shape is assembled in exactly one place.

fn build_can_flow(ctx: &SystemContext, s: &Scratch, mi: usize) -> CanFlow {
    CanFlow {
        // mcs-lint: allow(panic-policy) -- kernels run only after validate_config accepted the configuration
        priority: s.msg_priority[mi].expect("validated configuration assigns CAN priorities"),
        period: ctx.msg_period[mi],
        jitter: s.can_j[mi],
        offset: s.can_o[mi],
        transaction: Some(ctx.msg_phase[mi]),
        transmission: ctx.can_c[mi],
        size_bytes: ctx.msg_size[mi],
        response: s.can_r[mi],
    }
}

fn build_fifo_flow(ctx: &SystemContext, s: &Scratch, mi: usize) -> FifoFlow {
    FifoFlow {
        rank: s.msg_priority[mi]
            .map(|p| u64::from(p.level()))
            // mcs-lint: allow(panic-policy) -- kernels run only after validate_config accepted the configuration
            .expect("validated configuration assigns CAN priorities"),
        period: ctx.msg_period[mi],
        jitter: s.ttp_j[mi],
        offset: s.ttp_o[mi],
        transaction: Some(ctx.msg_phase[mi]),
        size_bytes: ctx.msg_size[mi],
        response: s.ttp_r[mi],
    }
}

/// The gateway transfer process `T` as the highest-rank task of its CPU.
fn transfer_task(system: &System) -> TaskFlow {
    TaskFlow {
        rank: TRANSFER_RANK,
        period: system.gateway.transfer_period,
        jitter: Time::ZERO,
        offset: Time::ZERO,
        transaction: None,
        wcet: system.gateway.transfer_wcet,
        blocking: Time::ZERO,
        response: system.gateway.transfer_wcet,
    }
}

fn build_task_flow(ctx: &SystemContext, s: &Scratch, pi: usize) -> TaskFlow {
    TaskFlow {
        // mcs-lint: allow(panic-policy) -- kernels run only after validate_config accepted the configuration
        rank: app_rank(s.proc_priority[pi].expect("validated configuration assigns ET priorities")),
        period: ctx.proc_period[pi],
        jitter: s.pj[pi],
        offset: s.po[pi],
        transaction: Some(ctx.proc_phase[pi]),
        wcet: ctx.proc_wcet[pi],
        blocking: ctx.proc_blocking[pi],
        response: s.pr[pi],
    }
}
