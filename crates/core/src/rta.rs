//! Offset-based response-time analysis for fixed-priority preemptive tasks
//! (paper §4.1, after Tindell's offset analysis and Palencia/González
//! Harbour).
//!
//! For a task `i` with blocking `B_i`, jitter `J_i` and higher-priority set
//! `hp(i)` on the same CPU:
//!
//! ```text
//! w_i = B_i + Σ_{j ∈ hp(i)} ⌈(w_i + J_j − O_ij)⁺ / T_j⌉⁺ · C_j
//! r_i = J_i + w_i + C_i
//! ```
//!
//! `O_ij` phases away interference from same-transaction tasks whose offsets
//! place them outside `i`'s busy window.

use mcs_model::Time;

/// One task competing for an ET CPU.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TaskFlow {
    /// Scheduling rank: **lower value = higher priority**. Ranks encode both
    /// the kernel-level class (the gateway transfer process outranks every
    /// application process) and the application priority π.
    pub rank: u64,
    /// Activation period `T`.
    pub period: Time,
    /// Release jitter `J`.
    pub jitter: Time,
    /// Offset `O` within the task's transaction.
    pub offset: Time,
    /// The transaction (process graph) the task belongs to, if any; offsets
    /// only phase tasks of the same transaction.
    pub transaction: Option<u32>,
    /// Worst-case execution time `C`.
    pub wcet: Time,
    /// Blocking bound `B` from lower-priority critical sections.
    pub blocking: Time,
    /// Current worst-case response-time iterate `r` of the task, used to
    /// gate offset-phase reductions against carry-in (see
    /// [`mcs_can::sound_phase`]). Zero disables no reductions.
    pub response: Time,
}

/// The relative phase `O_ij` of task `j` w.r.t. task `i`: the earliest
/// activation of `j` at or after `i`'s critical instant.
///
/// Tasks of different transactions (or without one) have no phase relation
/// and interfere from the critical instant (`O_ij = 0`).
pub fn relative_phase(o_i: Time, o_j: Time, period_j: Time, same_transaction: bool) -> Time {
    if !same_transaction {
        return Time::ZERO;
    }
    if o_j >= o_i {
        (o_j - o_i) % period_j
    } else {
        let behind = (o_i - o_j) % period_j;
        if behind.is_zero() {
            Time::ZERO
        } else {
            period_j - behind
        }
    }
}

fn same_transaction(a: Option<u32>, b: Option<u32>) -> bool {
    matches!((a, b), (Some(x), Some(y)) if x == y)
}

/// Number of activations of `j` interfering within a busy window `w` of `i`,
/// with the ε-tick guard making simultaneous zero-jitter releases count.
/// Offset phasing follows the carry-in-safe rule of
/// [`mcs_can::sound_phase`].
fn activations(w: Time, i: &TaskFlow, j: &TaskFlow) -> u64 {
    let phase = mcs_can::sound_phase(
        i.offset,
        i.jitter,
        j.offset,
        j.period,
        j.response,
        same_transaction(i.transaction, j.transaction),
    );
    let window = (w + j.jitter + Time::from_ticks(1)).saturating_sub(phase);
    if window.is_zero() {
        0
    } else {
        window.div_ceil(j.period)
    }
}

/// Computes the interference delay `w_i` of every task on one CPU.
///
/// Returns `None` for a task whose busy window exceeds `horizon` (diverged:
/// the demand of higher-priority tasks is unsustainable).
pub fn interference_delays(tasks: &[TaskFlow], horizon: Time) -> Vec<Option<Time>> {
    let mut delays = Vec::new();
    interference_delays_into(tasks, horizon, &mut delays);
    delays
}

/// Allocation-free form of [`interference_delays`]: clears and refills
/// `delays` in task order, reusing its capacity.
pub fn interference_delays_into(tasks: &[TaskFlow], horizon: Time, delays: &mut Vec<Option<Time>>) {
    delays.clear();
    interference_delays_filtered(tasks, horizon, |_| true, delays);
}

/// The one batch implementation behind every multi-task entry point,
/// parameterized by an entity filter: `delays` is resized to `tasks.len()`
/// (extending with `None`, truncating any stale tail), then the busy
/// window of each task `i` with `recompute(i)` is recomputed while the
/// remaining in-range entries keep their previous values. Callers
/// restricting the filter guarantee — e.g. via a dependency closure — that
/// no input of a skipped task changed, so its previous delay is still the
/// least fixed point.
pub fn interference_delays_filtered(
    tasks: &[TaskFlow],
    horizon: Time,
    mut recompute: impl FnMut(usize) -> bool,
    delays: &mut Vec<Option<Time>>,
) {
    delays.resize(tasks.len(), None);
    for (i, delay) in delays.iter_mut().enumerate() {
        if recompute(i) {
            *delay = interference_delay(tasks, i, horizon);
        }
    }
}

/// Computes the interference delay `w_i` of `tasks[i]`.
///
/// Because the CPU is *preemptive*, the busy window that collects
/// higher-priority arrivals must span the task's own execution as well
/// (`q_i = C_i + B_i + Σ …`): an interferer released while `i` is already
/// running still preempts it. (The paper's printed equation leaves `C_i`
/// out of the window; that is the standard form for non-preemptive
/// messages, but unsafe for preemptive processes — our simulator exhibits
/// the difference.) The returned delay is `w_i = q_i − C_i`, preserving the
/// paper's `r_i = J_i + w_i + C_i` bookkeeping.
///
/// # Panics
///
/// Panics if `i` is out of range or a task has a zero period.
pub fn interference_delay(tasks: &[TaskFlow], i: usize, horizon: Time) -> Option<Time> {
    interference_delay_from(tasks, i, horizon, Time::ZERO)
}

/// [`interference_delay`] with a warm-start hint: the busy window starts at
/// `max(B + C, hint + C)` (i.e. the hint is a previously converged *delay*
/// `w = q − C`).
///
/// Sound when the hint converged under a pointwise-smaller interference
/// operator (jitters/responses only grow, offsets constant across the outer
/// iteration) — the fixed point reached is identical to a cold start.
/// `ZERO` reproduces the cold start exactly.
///
/// # Panics
///
/// Panics if `i` is out of range or a task has a zero period.
pub fn interference_delay_from(
    tasks: &[TaskFlow],
    i: usize,
    horizon: Time,
    hint: Time,
) -> Option<Time> {
    let me = &tasks[i];
    let hp = |t: &(usize, &TaskFlow)| t.0 != i && t.1.rank < me.rank;
    let base = me.blocking.saturating_add(me.wcet);
    let mut q = base.max(hint.saturating_add(me.wcet));
    loop {
        let interference: Time = tasks
            .iter()
            .enumerate()
            .filter(hp)
            .map(|(_, j)| j.wcet.saturating_mul(activations(q, me, j)))
            .fold(Time::ZERO, Time::saturating_add);
        let next = base.saturating_add(interference);
        if next > horizon {
            return None;
        }
        if next == q {
            return Some(q - me.wcet);
        }
        q = next;
    }
}

/// [`interference_delay_from`] over tasks **pre-sorted by ascending rank**
/// (unique ranks): `tasks[..i]` is exactly the higher-priority set.
/// Bit-identical to the generic form, without the per-call rank filtering —
/// the shape the reusable analysis context calls with.
///
/// # Panics
///
/// Panics if `i` is out of range or a task has a zero period.
pub fn interference_delay_sorted(
    tasks: &[TaskFlow],
    i: usize,
    horizon: Time,
    hint: Time,
) -> Option<Time> {
    let me = &tasks[i];
    let base = me.blocking.saturating_add(me.wcet);
    let mut q = base.max(hint.saturating_add(me.wcet));
    loop {
        let interference: Time = tasks[..i]
            .iter()
            .map(|j| j.wcet.saturating_mul(activations(q, me, j)))
            .fold(Time::ZERO, Time::saturating_add);
        let next = base.saturating_add(interference);
        if next > horizon {
            return None;
        }
        if next == q {
            return Some(q - me.wcet);
        }
        q = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(rank: u64, period_ms: u64, c_ms: u64) -> TaskFlow {
        TaskFlow {
            rank,
            period: Time::from_millis(period_ms),
            jitter: Time::ZERO,
            offset: Time::ZERO,
            transaction: None,
            wcet: Time::from_millis(c_ms),
            blocking: Time::ZERO,
            response: Time::ZERO,
        }
    }

    #[test]
    fn classic_rate_monotonic_example() {
        // Liu & Layland style: C=(1,2), T=(4,10). Low task's w = 2 highs.
        let tasks = vec![task(0, 4, 1), task(1, 10, 2)];
        let w = interference_delays(&tasks, Time::from_millis(100));
        assert_eq!(w[0], Some(Time::ZERO));
        // Busy window for task 1: w=0 -> 1 activation -> w=1; w=1 -> 1 -> ok.
        assert_eq!(w[1], Some(Time::from_millis(1)));
    }

    #[test]
    fn blocking_enters_the_window() {
        let mut lo = task(1, 10, 2);
        lo.blocking = Time::from_millis(3);
        let tasks = vec![task(0, 100, 1), lo];
        let w = interference_delays(&tasks, Time::from_millis(100));
        assert_eq!(w[1], Some(Time::from_millis(4)));
    }

    #[test]
    fn figure4a_interference_of_p3_on_p2() {
        // Paper figure 4a: P2 and P3 on node N2, priority(P3) > priority(P2),
        // O2 = O3 = 80 ms, J3 = 25 ms, C3 = 20 ms, T = 240 ms.
        // The paper reports I2 = w2 = 20 ms.
        let p3 = TaskFlow {
            rank: 0,
            period: Time::from_millis(240),
            jitter: Time::from_millis(25),
            offset: Time::from_millis(80),
            transaction: Some(1),
            wcet: Time::from_millis(20),
            blocking: Time::ZERO,
            response: Time::from_millis(45),
        };
        let p2 = TaskFlow {
            rank: 1,
            jitter: Time::from_millis(15),
            wcet: Time::from_millis(20),
            ..p3
        };
        let tasks = vec![p3, p2];
        let w = interference_delays(&tasks, Time::from_millis(10_000));
        assert_eq!(w[1], Some(Time::from_millis(20)));
        // r2 = J2 + w2 + C2 = 15 + 20 + 20 = 55 ms, as in the paper.
        let r2 = tasks[1].jitter + w[1].expect("converged") + tasks[1].wcet;
        assert_eq!(r2, Time::from_millis(55));
    }

    #[test]
    fn phased_tasks_do_not_interfere_within_short_windows() {
        let mut hi = task(0, 100, 10);
        hi.transaction = Some(1);
        hi.offset = Time::from_millis(50);
        let mut lo = task(1, 100, 10);
        lo.transaction = Some(1);
        lo.offset = Time::ZERO;
        let tasks = vec![hi, lo];
        let w = interference_delays(&tasks, Time::from_millis(1000));
        // hi activates 50 ms after lo; lo's window stays below 50 ms.
        assert_eq!(w[1], Some(Time::ZERO));
    }

    #[test]
    fn relative_phase_wraps_by_period() {
        let t = Time::from_millis(100);
        assert_eq!(
            relative_phase(Time::from_millis(30), Time::from_millis(80), t, true),
            Time::from_millis(50)
        );
        assert_eq!(
            relative_phase(Time::from_millis(80), Time::from_millis(30), t, true),
            Time::from_millis(50)
        );
        assert_eq!(
            relative_phase(Time::from_millis(80), Time::from_millis(80), t, true),
            Time::ZERO
        );
        assert_eq!(
            relative_phase(Time::from_millis(30), Time::from_millis(80), t, false),
            Time::ZERO
        );
    }

    #[test]
    fn overload_diverges() {
        // 120 % higher-priority demand on the lowest task: no fixed point.
        let tasks = vec![task(0, 10, 6), task(1, 10, 6), task(2, 10, 6)];
        let w = interference_delays(&tasks, Time::from_millis(1000));
        assert_eq!(w[2], None);
    }

    #[test]
    fn filtered_delays_recompute_only_the_selected_tasks() {
        let tasks = vec![task(0, 4, 1), task(1, 10, 2), task(2, 20, 3)];
        let horizon = Time::from_millis(1000);
        let full = interference_delays(&tasks, horizon);
        // A poisoned buffer: the filter must leave unselected entries
        // untouched and resize missing ones with `None`.
        let poison = Some(Time::from_millis(999));
        let mut delays = vec![poison];
        interference_delays_filtered(&tasks, horizon, |i| i != 0, &mut delays);
        assert_eq!(delays[0], poison);
        assert_eq!(delays[1], full[1]);
        assert_eq!(delays[2], full[2]);
        // Selecting everything reproduces the batch form.
        interference_delays_filtered(&tasks, horizon, |_| true, &mut delays);
        assert_eq!(delays, full);
    }
}
