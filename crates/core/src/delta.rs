//! Dependency-tracked dirtiness for incremental ("delta") re-analysis.
//!
//! A single design transformation — a priority swap on one ET CPU or on the
//! CAN bus — perturbs only a small cone of the holistic fixed point; the
//! rest of the system's response times are provably unchanged. This module
//! derives that cone: the optimizer reports the *seed* entities a move
//! touched ([`DeltaSeeds`]), and [`close_dirty`] closes them over the static
//! entity-dependency graph of the [`SystemContext`]:
//!
//! * **route successors** — a process's response time feeds the release
//!   jitter of its outgoing message legs and of its direct ET successors; a
//!   CAN leg's response feeds its (ET) destination's jitter, and the CAN leg
//!   of an ETC→TTC message feeds the enqueue jitter of its FIFO leg;
//! * **priority-band interference sets** — a dirty task dirties every
//!   lower-priority task on the same ET CPU, and a dirty CAN flow dirties
//!   every lower-priority flow on the bus (their `hp` sets contain the dirty
//!   entity); higher-priority entities are untouched because both kernels
//!   draw interference only from strictly higher priorities and their
//!   blocking bounds depend only on the (unchanged) membership multiset;
//! * **phase groups** — each dirty entity marks its process graph
//!   (transaction), so the delta jitter propagation walks only the graphs
//!   that contain dirty entities;
//! * **gateway coupling** — the FIFO leg of a dirty ETC→TTC message dirties
//!   every FIFO leg drained after it (lower CAN priority), and dirty release
//!   inputs of the outer schedule↔analysis fixed point (FIFO arrivals
//!   bounding TT releases, ET-hosted TTP sender completions bounding frame
//!   releases) are handled by the *trajectory replay* of
//!   [`Evaluator::evaluate_delta`](crate::Evaluator::evaluate_delta): the
//!   outer loop re-derives the releases per iteration and falls back to a
//!   full re-schedule + re-analysis of any iteration whose schedule inputs
//!   actually changed.
//!
//! The closure is exact in the conservative direction: every entity whose
//! analysis inputs can change is marked dirty, so entities left clean keep
//! their previously converged values *as the least fixed point* of the new
//! configuration — which is what makes the delta evaluation bit-identical
//! to a full re-analysis.

use mcs_model::{MessageId, MessageRoute, ProcessId};

use crate::context::{Scratch, SystemContext};

/// The seed entities a configuration change touched, reported by the
/// optimizer's move layer (`mcs_opt::Move::apply_undoable_seeded`).
///
/// Seeds must **over-approximate** the difference between the configuration
/// being evaluated and the last configuration the evaluator analyzed
/// successfully: search loops accumulate the seeds of every applied *and
/// reverted* move since their last completed evaluation and clear the set
/// once an evaluation succeeds. Marking too much merely shrinks the delta
/// win; marking too little would be unsound.
///
/// Moves that change the TDMA round alter the bus parameters every kernel
/// reads and are recorded as [`structural`]; structural seed sets always
/// take the full evaluation path. Offset-pin moves record nothing: they act
/// purely through the static scheduler's release bounds, which the delta
/// evaluator re-derives and re-checks per outer iteration anyway.
///
/// [`structural`]: DeltaSeeds::mark_structural
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DeltaSeeds {
    structural: bool,
    processes: Vec<ProcessId>,
    messages: Vec<MessageId>,
}

impl DeltaSeeds {
    /// An empty seed set (no change since the last evaluation).
    pub fn new() -> Self {
        Self::default()
    }

    /// A seed set for a structural change (the TDMA round): the full
    /// evaluation path is always taken.
    pub fn structural() -> Self {
        DeltaSeeds {
            structural: true,
            ..Self::default()
        }
    }

    /// Empties the set (call after a successful evaluation), keeping the
    /// allocations.
    pub fn clear(&mut self) {
        self.structural = false;
        self.processes.clear();
        self.messages.clear();
    }

    /// Records a structural change (the TDMA round — slot order or sizes).
    pub fn mark_structural(&mut self) {
        self.structural = true;
    }

    /// Adds every seed of `other` to this set (duplicates are harmless —
    /// the closure marks each entity once).
    pub fn merge(&mut self, other: &DeltaSeeds) {
        self.structural |= other.structural;
        self.processes.extend_from_slice(&other.processes);
        self.messages.extend_from_slice(&other.messages);
    }

    /// Records a process whose priority changed.
    pub fn push_process(&mut self, process: ProcessId) {
        self.processes.push(process);
    }

    /// Records a message whose priority changed.
    pub fn push_message(&mut self, message: MessageId) {
        self.messages.push(message);
    }

    /// `true` if a structural change was recorded.
    pub fn is_structural(&self) -> bool {
        self.structural
    }

    /// `true` if nothing was recorded at all.
    pub fn is_empty(&self) -> bool {
        !self.structural && self.processes.is_empty() && self.messages.is_empty()
    }

    /// The recorded process seeds.
    pub fn processes(&self) -> &[ProcessId] {
        &self.processes
    }

    /// The recorded message seeds.
    pub fn messages(&self) -> &[MessageId] {
        &self.messages
    }
}

/// One entity on the closure worklist.
#[derive(Clone, Copy, Debug)]
enum Key {
    /// An ET process, by process index.
    Proc(usize),
    /// The CAN leg of a message, by message index.
    Can(usize),
}

/// The dirty entities of one delta evaluation, kept in [`Scratch`] so the
/// flag vectors are reused across evaluations.
#[derive(Clone, Debug, Default)]
pub(crate) struct DirtySet {
    /// ET processes whose timing must be re-derived, by process index.
    pub procs: Vec<bool>,
    /// CAN legs whose delay must be re-derived, by message index.
    pub can: Vec<bool>,
    /// FIFO (TTP) legs whose delay must be re-derived, by message index.
    pub ttp: Vec<bool>,
    /// Messages whose TTP frame placement changed (schedule diff): their
    /// frame-derived offsets/arrivals are re-read from the new schedule.
    pub frame: Vec<bool>,
    /// Process graphs (phase groups) containing a dirty entity, by graph
    /// index — the delta jitter propagation walks only these.
    pub graphs: Vec<bool>,
    /// ET CPUs hosting a dirty process, by `et_nodes` index.
    pub nodes: Vec<bool>,
    /// Number of dirty entities (processes + CAN legs + FIFO legs).
    pub count: usize,
    /// Whether the no-op probe applies: the change is pure priority seeds
    /// (no moved placements), so only the *equation-dirty* spans below can
    /// produce new values — if they reproduce their snapshot values, the
    /// whole cone is provably clean. The evaluator additionally requires
    /// the change to be a per-resource priority *permutation* among the
    /// seeds (its validation fast-path check): only then do all hp-set
    /// changes stay inside the seed position spans.
    pub probe_ok: bool,
    /// Per ET CPU: the `node_order` position span whose hp sets changed.
    pub eq_node_span: Vec<Option<(usize, usize)>>,
    /// The `can_order` position span whose hp sets changed.
    pub eq_can_span: Option<(usize, usize)>,
    /// The FIFO rank span whose drained-ahead sets changed.
    pub eq_fifo_span: Option<(u64, u64)>,
    /// Worklist of entities whose dependents still need marking.
    work: Vec<Key>,
}

fn span_extend<T: Copy + Ord>(span: &mut Option<(T, T)>, v: T) {
    *span = Some(match *span {
        None => (v, v),
        Some((lo, hi)) => (lo.min(v), hi.max(v)),
    });
}

impl DirtySet {
    /// Allocation-reusing assignment from another dirty set (batch lanes
    /// mirror the primary evaluator's state before re-climbing their tails).
    pub(crate) fn sync_from(&mut self, src: &DirtySet) {
        self.procs.clone_from(&src.procs);
        self.can.clone_from(&src.can);
        self.ttp.clone_from(&src.ttp);
        self.frame.clone_from(&src.frame);
        self.graphs.clone_from(&src.graphs);
        self.nodes.clone_from(&src.nodes);
        self.count = src.count;
        self.probe_ok = src.probe_ok;
        self.eq_node_span.clone_from(&src.eq_node_span);
        self.eq_can_span = src.eq_can_span;
        self.eq_fifo_span = src.eq_fifo_span;
        self.work.clone_from(&src.work);
    }

    fn reset(&mut self, ctx: &SystemContext) {
        let n_p = ctx.proc_is_tt.len();
        let n_m = ctx.route.len();
        for (v, n) in [
            (&mut self.procs, n_p),
            (&mut self.can, n_m),
            (&mut self.ttp, n_m),
            (&mut self.frame, n_m),
            (&mut self.graphs, ctx.n_graphs),
            (&mut self.nodes, ctx.et_nodes.len()),
        ] {
            v.clear();
            v.resize(n, false);
        }
        self.count = 0;
        self.probe_ok = true;
        self.eq_node_span.clear();
        self.eq_node_span.resize(ctx.et_nodes.len(), None);
        self.eq_can_span = None;
        self.eq_fifo_span = None;
        self.work.clear();
    }

    fn mark_proc(&mut self, pi: usize) {
        if !self.procs[pi] {
            self.procs[pi] = true;
            self.count += 1;
            self.work.push(Key::Proc(pi));
        }
    }

    fn mark_can(&mut self, mi: usize) {
        if !self.can[mi] {
            self.can[mi] = true;
            self.count += 1;
            self.work.push(Key::Can(mi));
        }
    }

    /// Marks every analyzed entity dirty — the seeding of the *full*
    /// evaluation path, which drives the same worklist engine as the delta
    /// path (see [`crate::holistic`]): CAN legs, FIFO legs, every process,
    /// every frame-derived quantity, every graph and every ET CPU.
    pub(crate) fn mark_all(&mut self, ctx: &SystemContext) {
        self.reset(ctx);
        self.probe_ok = false;
        self.procs.iter_mut().for_each(|v| *v = true);
        self.frame.iter_mut().for_each(|v| *v = true);
        self.graphs.iter_mut().for_each(|v| *v = true);
        self.nodes.iter_mut().for_each(|v| *v = true);
        for &mi in &ctx.can_ids {
            self.can[mi] = true;
        }
        for &mi in &ctx.fifo_ids {
            self.ttp[mi] = true;
        }
        self.count = self.procs.len() + ctx.can_ids.len() + ctx.fifo_ids.len();
    }
}

/// The result of closing a seed set over the dependency graph.
#[derive(Clone, Copy, Debug)]
pub(crate) struct DirtyCone {
    /// Number of dirty entities in the closed cone.
    pub entities: usize,
    /// The cone contains a release input of the outer schedule↔analysis
    /// fixed point: a FIFO leg (its arrival bounds a TT release) or an
    /// ET-hosted TTP sender (its completion bounds a frame release). With
    /// `false`, the iteration's derived releases provably reproduce the
    /// baseline's, so an intermediate iteration can be skipped outright.
    pub feeders: bool,
}

/// Closes the configuration seeds and the schedule-diff seeds (processes
/// whose start and messages whose frame placement moved in a schedule
/// rebuild) over the entity-dependency graph, leaving the per-entity flags
/// in `scratch.dirty`.
///
/// Requires the configuration-derived tables of `scratch` (`can_order`,
/// `can_pos`, `node_order`, `node_pos`, `msg_priority`) to reflect the
/// configuration being evaluated — the priority bands are read from them.
pub(crate) fn close_dirty(
    ctx: &SystemContext,
    scratch: &mut Scratch,
    seed_sets: &[&DeltaSeeds],
    moved: &[(&[ProcessId], &[MessageId])],
) -> DirtyCone {
    let Scratch {
        dirty,
        can_order,
        can_pos,
        node_order,
        node_pos,
        msg_priority,
        ..
    } = scratch;
    dirty.reset(ctx);
    let mut feeders = false;

    for seeds in seed_sets {
        for &p in seeds.processes() {
            let pi = p.index();
            // A TT process's priority is not read by the analysis (its
            // timing is fixed by the schedule table), so a stray TT seed
            // perturbs nothing.
            if !ctx.proc_is_tt[pi] {
                dirty.mark_proc(pi);
                if let Some(ni) = ctx.proc_et_node[pi] {
                    span_extend(&mut dirty.eq_node_span[ni as usize], node_pos[pi]);
                }
            }
        }
        for &m in seeds.messages() {
            let mi = m.index();
            // Priorities of messages without a CAN leg (TTC→TTC traffic)
            // are not read by the analysis; everything else enters through
            // its CAN leg.
            if ctx.route[mi].uses_can() {
                dirty.mark_can(mi);
                span_extend(&mut dirty.eq_can_span, can_pos[mi]);
                // Every CAN seed extends the FIFO rank span too: a swap
                // between a FIFO and a non-FIFO message still moves a rank
                // across the drained-ahead sets of the legs in between.
                let rank = u64::from(
                    msg_priority[mi]
                        // mcs-lint: allow(panic-policy) -- the delta closure only runs on configurations evaluate() has validated
                        .expect("validated configuration assigns CAN priorities")
                        .level(),
                );
                span_extend(&mut dirty.eq_fifo_span, rank);
            }
        }
    }
    // Schedule-diff seeds: a moved TT start re-enters the analysis as the
    // process's (fixed) offset; a moved frame as the frame-derived arrival
    // (TTC→TTC) or CAN-leg offset (TTC→ETC).
    for &(moved_procs, moved_msgs) in moved {
        if !moved_procs.is_empty() || !moved_msgs.is_empty() {
            // Moved placements are real offset changes: no no-op probe.
            dirty.probe_ok = false;
        }
        for &p in moved_procs {
            dirty.mark_proc(p.index());
        }
        for &m in moved_msgs {
            let mi = m.index();
            if !dirty.frame[mi] {
                dirty.frame[mi] = true;
                dirty.count += 1;
                dirty.graphs[ctx.msg_graph[mi] as usize] = true;
            }
            if matches!(ctx.route[mi], MessageRoute::TtcToEtc) {
                // The moved frame shifts the CAN-leg offset: the flow's own
                // delay and its priority band must be re-derived.
                dirty.mark_can(mi);
            }
        }
    }

    while let Some(key) = dirty.work.pop() {
        match key {
            Key::Proc(pi) => {
                dirty.graphs[ctx.proc_graph[pi] as usize] = true;
                if ctx.proc_feeds_msg_release[pi] {
                    feeders = true;
                }
                if let Some(ni) = ctx.proc_et_node[pi] {
                    let ni = ni as usize;
                    dirty.nodes[ni] = true;
                    // Priority band: every lower-priority process on the CPU
                    // sees pi in its hp set.
                    for p in &node_order[ni][node_pos[pi] + 1..] {
                        dirty.mark_proc(p.index());
                    }
                    for &mi in &ctx.proc_out_et_msgs[pi] {
                        dirty.mark_can(mi as usize);
                    }
                }
                // (A dirty TT process — a moved schedule start — propagates
                // only through its direct ET successors; its outgoing
                // message legs are frame-driven and seeded by the diff.)
                for &q in &ctx.proc_direct_succ[pi] {
                    dirty.mark_proc(q as usize);
                }
            }
            Key::Can(mi) => {
                dirty.graphs[ctx.msg_graph[mi] as usize] = true;
                // Priority band: every lower-priority flow on the bus sees
                // mi in its hp set.
                for &mj in &can_order[can_pos[mi] + 1..] {
                    dirty.mark_can(mj);
                }
                match ctx.route[mi] {
                    MessageRoute::EtcToTtc => {
                        // The CAN-leg response feeds the FIFO enqueue
                        // jitter, and the FIFO drains in CAN-priority order:
                        // the dirty leg and every leg drained after it
                        // (higher rank value) must be re-derived. A FIFO leg
                        // propagates nothing further itself — its arrival
                        // bounds a TT release, which the trajectory replay
                        // of the outer loop re-derives and re-checks.
                        feeders = true;
                        let level = msg_priority[mi]
                            // mcs-lint: allow(panic-policy) -- the delta closure only runs on configurations evaluate() has validated
                            .expect("validated configuration assigns CAN priorities")
                            .level();
                        for &mj in &ctx.fifo_ids {
                            let dirtied = mj == mi
                                || msg_priority[mj]
                                    // mcs-lint: allow(panic-policy) -- the delta closure only runs on configurations evaluate() has validated
                                    .expect("validated configuration assigns CAN priorities")
                                    .level()
                                    >= level;
                            if dirtied && !dirty.ttp[mj] {
                                dirty.ttp[mj] = true;
                                dirty.count += 1;
                            }
                        }
                    }
                    MessageRoute::EtcToEtc | MessageRoute::TtcToEtc => {
                        let dest = ctx.msg_dest[mi] as usize;
                        if !ctx.proc_is_tt[dest] {
                            dirty.mark_proc(dest);
                        }
                    }
                    MessageRoute::TtcToTtc => {}
                }
            }
        }
    }

    DirtyCone {
        entities: dirty.count,
        feeders,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Evaluator;
    use crate::multicluster::AnalysisParams;
    use mcs_gen::{figure4, figure4_ids as ids};
    use mcs_model::Time;

    fn fig() -> mcs_gen::Figure4 {
        figure4(Time::from_millis(200))
    }

    #[test]
    fn structural_seeds_survive_clear_merge_and_queries() {
        let mut seeds = DeltaSeeds::structural();
        assert!(seeds.is_structural());
        assert!(!seeds.is_empty());
        seeds.clear();
        assert!(seeds.is_empty());
        assert!(!seeds.is_structural());
        // Merging a structural set into a plain one taints it.
        seeds.push_process(ids::P2);
        let mut other = DeltaSeeds::new();
        other.mark_structural();
        seeds.merge(&other);
        assert!(seeds.is_structural());
        assert_eq!(seeds.processes(), &[ids::P2]);
    }

    #[test]
    fn merge_is_idempotent_under_closure() {
        let fig = fig();
        let mut seeds = DeltaSeeds::new();
        seeds.push_process(ids::P3);
        seeds.push_message(ids::M1);
        let mut doubled = seeds.clone();
        doubled.merge(&seeds);
        assert_ne!(seeds.processes().len(), doubled.processes().len());

        let mut a = Evaluator::new(&fig.system, AnalysisParams::default());
        let cone_once = a.close_for_test(&fig.config_a, &[&seeds], &[]);
        let dirty_once = a.dirty_for_test().clone();
        let mut b = Evaluator::new(&fig.system, AnalysisParams::default());
        let cone_twice = b.close_for_test(&fig.config_a, &[&doubled, &seeds], &[]);
        let dirty_twice = b.dirty_for_test();
        // Duplicated seeds close to the identical cone: each entity is
        // marked (and counted) once.
        assert_eq!(cone_once.entities, cone_twice.entities);
        assert_eq!(cone_once.feeders, cone_twice.feeders);
        assert_eq!(dirty_once.procs, dirty_twice.procs);
        assert_eq!(dirty_once.can, dirty_twice.can);
        assert_eq!(dirty_once.ttp, dirty_twice.ttp);
    }

    #[test]
    fn empty_seeds_close_to_an_empty_cone() {
        let fig = fig();
        let mut ev = Evaluator::new(&fig.system, AnalysisParams::default());
        let cone = ev.close_for_test(&fig.config_a, &[&DeltaSeeds::new()], &[]);
        assert_eq!(cone.entities, 0);
        assert!(!cone.feeders);
        assert!(ev.dirty_for_test().probe_ok);
    }

    #[test]
    fn gateway_release_coupling_marks_feeders_and_the_fifo_tail() {
        let fig = fig();
        // m3 (P2 → P4) is the ETC→TTC message: its FIFO arrival bounds
        // P4's release — a coupling of the *outer* fixed point.
        let mut seeds = DeltaSeeds::new();
        seeds.push_message(ids::M3);
        let mut ev = Evaluator::new(&fig.system, AnalysisParams::default());
        let cone = ev.close_for_test(&fig.config_a, &[&seeds], &[]);
        assert!(cone.feeders, "a dirty FIFO leg is a release input");
        let dirty = ev.dirty_for_test();
        assert!(dirty.can[ids::M3.index()]);
        assert!(dirty.ttp[ids::M3.index()]);

        // Seeding the highest-priority CAN message reaches m3 through the
        // bus band (m2, m3 are lower priority), and through m3 the FIFO leg
        // and the feeders flag.
        let mut seeds = DeltaSeeds::new();
        seeds.push_message(ids::M1);
        let mut ev = Evaluator::new(&fig.system, AnalysisParams::default());
        let cone = ev.close_for_test(&fig.config_a, &[&seeds], &[]);
        assert!(cone.feeders);
        let dirty = ev.dirty_for_test();
        assert!(dirty.can[ids::M1.index()]);
        assert!(dirty.can[ids::M2.index()]);
        assert!(dirty.can[ids::M3.index()]);
        assert!(dirty.ttp[ids::M3.index()]);
    }

    #[test]
    fn priority_band_closure_marks_only_lower_priorities() {
        let fig = fig();
        // Configuration (a): priority(P3) = 0 > priority(P2) = 1 on N2.
        // Seeding the *lower*-priority P2 must leave P3 clean (its hp set
        // does not contain P2)…
        let mut seeds = DeltaSeeds::new();
        seeds.push_process(ids::P2);
        let mut ev = Evaluator::new(&fig.system, AnalysisParams::default());
        let cone = ev.close_for_test(&fig.config_a, &[&seeds], &[]);
        let dirty = ev.dirty_for_test();
        assert!(dirty.procs[ids::P2.index()]);
        assert!(!dirty.procs[ids::P3.index()]);
        // …but P2's response feeds the enqueue jitter of m3, so the cone
        // still contains a release input.
        assert!(dirty.can[ids::M3.index()]);
        assert!(cone.feeders);

        // Seeding the higher-priority P3 dirties the band below it.
        let mut seeds = DeltaSeeds::new();
        seeds.push_process(ids::P3);
        let mut ev = Evaluator::new(&fig.system, AnalysisParams::default());
        ev.close_for_test(&fig.config_a, &[&seeds], &[]);
        let dirty = ev.dirty_for_test();
        assert!(dirty.procs[ids::P3.index()]);
        assert!(dirty.procs[ids::P2.index()]);
    }

    #[test]
    fn moved_placements_disable_the_probe_and_seed_the_frame() {
        let fig = fig();
        let mut ev = Evaluator::new(&fig.system, AnalysisParams::default());
        let moved_msgs = [ids::M1];
        let cone = ev.close_for_test(&fig.config_a, &[&DeltaSeeds::new()], &[(&[], &moved_msgs)]);
        let dirty = ev.dirty_for_test();
        assert!(!dirty.probe_ok, "moved placements are real offset changes");
        assert!(dirty.frame[ids::M1.index()]);
        // A moved TTC→ETC frame shifts the CAN-leg offset: the flow and its
        // band re-derive, down to the FIFO leg of m3.
        assert!(dirty.can[ids::M1.index()]);
        assert!(dirty.can[ids::M3.index()]);
        assert!(dirty.ttp[ids::M3.index()]);
        assert!(cone.entities > 0);
    }
}
