//! Validation of a system configuration ψ against a system.
//!
//! Checks everything the analysis assumes: a complete, per-resource-unique
//! priority assignment π for the ETC, and a TDMA configuration β with one
//! slot per TTP node, each large enough for the largest single frame its
//! node must send.

use std::collections::HashMap;

use mcs_model::{ConfigError, MessageRoute, NodeId, Priority, System, SystemConfig};

/// Validates ψ = ⟨β, π⟩ against the system.
///
/// # Errors
///
/// Returns the first [`ConfigError`] found: structural slot problems,
/// under-provisioned slots, or missing/duplicate priorities.
pub fn validate_config(system: &System, config: &SystemConfig) -> Result<(), ConfigError> {
    config.tdma.validate(&system.architecture)?;
    validate_slot_capacities(system, config)?;
    validate_priorities(system, config)
}

fn validate_slot_capacities(system: &System, config: &SystemConfig) -> Result<(), ConfigError> {
    let app = &system.application;
    // Largest frame each TTP node must emit in its own slot: messages whose
    // TTP leg leaves from that node.
    let mut required: HashMap<NodeId, u32> = HashMap::new();
    for message in app.messages() {
        let route = system.route(message.id());
        if !route.uses_ttp() {
            continue;
        }
        let node = if route == MessageRoute::EtcToTtc {
            // Carried by the gateway slot S_G out of Out_TTP.
            system.architecture.gateway()
        } else {
            app.process(message.source()).node()
        };
        let entry = required.entry(node).or_insert(0);
        *entry = (*entry).max(message.size_bytes());
    }
    for (node, required) in required {
        let (_, slot) = config
            .tdma
            .slot_of_node(node)
            .ok_or(ConfigError::MissingSlot(node))?;
        if slot.capacity_bytes < required {
            return Err(ConfigError::SlotTooSmall {
                node,
                capacity: slot.capacity_bytes,
                required,
            });
        }
    }
    Ok(())
}

fn validate_priorities(system: &System, config: &SystemConfig) -> Result<(), ConfigError> {
    let app = &system.application;
    // Every process on an ET-scheduled CPU needs a priority, unique per CPU.
    let mut per_node: HashMap<(NodeId, Priority), mcs_model::ProcessId> = HashMap::new();
    for process in app.processes() {
        if !system.architecture.is_et_cpu(process.node()) {
            continue;
        }
        let priority = config
            .priorities
            .process(process.id())
            .ok_or(ConfigError::MissingProcessPriority(process.id()))?;
        if let Some(&other) = per_node.get(&(process.node(), priority)) {
            return Err(ConfigError::DuplicateProcessPriority(other, process.id()));
        }
        per_node.insert((process.node(), priority), process.id());
    }
    // Every message with a CAN leg needs a priority, unique on the bus.
    let mut on_bus: HashMap<Priority, mcs_model::MessageId> = HashMap::new();
    for message in app.messages() {
        if !system.route(message.id()).uses_can() {
            continue;
        }
        let priority = config
            .priorities
            .message(message.id())
            .ok_or(ConfigError::MissingMessagePriority(message.id()))?;
        if let Some(&other) = on_bus.get(&priority) {
            return Err(ConfigError::DuplicateMessagePriority(other, message.id()));
        }
        on_bus.insert(priority, message.id());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_model::{
        Application, Architecture, NodeRole, PriorityAssignment, TdmaConfig, TdmaSlot, Time,
    };

    fn fixture() -> (System, SystemConfig) {
        let mut b = Architecture::builder();
        let n1 = b.add_node("N1", NodeRole::TimeTriggered);
        let n2 = b.add_node("N2", NodeRole::EventTriggered);
        let ng = b.add_node("NG", NodeRole::Gateway);
        let arch = b.build().expect("valid");

        let mut ab = Application::builder();
        let g = ab.add_graph("G", Time::from_millis(100), Time::from_millis(100));
        let p1 = ab.add_process(g, "P1", n1, Time::from_millis(5));
        let p2 = ab.add_process(g, "P2", n2, Time::from_millis(5));
        let p3 = ab.add_process(g, "P3", n2, Time::from_millis(5));
        let p4 = ab.add_process(g, "P4", n1, Time::from_millis(5));
        ab.link(p1, p2, 8); // m0 TTC->ETC
        ab.link(p2, p3, 0); // local
        ab.link(p3, p4, 16); // m1 ETC->TTC
        let app = ab.build(&arch).expect("valid");
        let system = System::new(app, arch);

        let tdma = TdmaConfig::new(vec![
            TdmaSlot {
                node: ng,
                capacity_bytes: 16,
            },
            TdmaSlot {
                node: n1,
                capacity_bytes: 8,
            },
        ]);
        let mut pri = PriorityAssignment::new();
        pri.set_process(p2, Priority::new(1));
        pri.set_process(p3, Priority::new(2));
        pri.set_message(mcs_model::MessageId::new(0), Priority::new(1));
        pri.set_message(mcs_model::MessageId::new(1), Priority::new(2));
        (system, SystemConfig::new(tdma, pri))
    }

    #[test]
    fn valid_configuration_passes() {
        let (system, config) = fixture();
        assert_eq!(validate_config(&system, &config), Ok(()));
    }

    #[test]
    fn sender_slot_must_fit_largest_message() {
        let (system, mut config) = fixture();
        config.tdma.slots_mut()[1].capacity_bytes = 4; // m0 is 8 bytes
        assert!(matches!(
            validate_config(&system, &config),
            Err(ConfigError::SlotTooSmall {
                capacity: 4,
                required: 8,
                ..
            })
        ));
    }

    #[test]
    fn gateway_slot_must_fit_etc_to_ttc_traffic() {
        let (system, mut config) = fixture();
        config.tdma.slots_mut()[0].capacity_bytes = 8; // m1 is 16 bytes
        assert!(matches!(
            validate_config(&system, &config),
            Err(ConfigError::SlotTooSmall {
                capacity: 8,
                required: 16,
                ..
            })
        ));
    }

    #[test]
    fn missing_priorities_are_reported() {
        let (system, mut config) = fixture();
        config.priorities = PriorityAssignment::new();
        assert!(matches!(
            validate_config(&system, &config),
            Err(ConfigError::MissingProcessPriority(_))
        ));
    }

    #[test]
    fn duplicate_priorities_are_reported() {
        let (system, mut config) = fixture();
        config
            .priorities
            .set_process(mcs_model::ProcessId::new(2), Priority::new(1)); // same as P2
        assert!(matches!(
            validate_config(&system, &config),
            Err(ConfigError::DuplicateProcessPriority(_, _))
        ));

        let (system, mut config) = fixture();
        config
            .priorities
            .set_message(mcs_model::MessageId::new(1), Priority::new(1));
        assert!(matches!(
            validate_config(&system, &config),
            Err(ConfigError::DuplicateMessagePriority(_, _))
        ));
    }
}
