//! Reproduction of the paper's worked example (Figures 4 & 6): the process
//! graph G1 mapped on a two-cluster system, analyzed under three system
//! configurations ψ.
//!
//! * (a) gateway slot first (`S_G`, `S_1`), `priority(m1) > priority(m2)`,
//!   `priority(P3) > priority(P2)` — the paper reports a deadline miss;
//! * (b) `S_1` first — m1/m2 leave one round earlier, response improves;
//! * (c) slots as in (a) but `priority(P2) > priority(P3)` — the
//!   interference `I_2` disappears, response improves.
//!
//! Our analysis evaluates the paper's equations *strictly*, which is
//! slightly more conservative than the trace-annotated values printed in
//! Figure 4a (e.g. we charge the CAN blocking `B_m = max_{lp} C_k` to m1,
//! where the figure uses 0): we obtain r_G1 = 250/230/210 ms for a/b/c
//! versus the paper's 210 ms for (a). The *shape* is identical: (b) and (c)
//! dominate (a), and a deadline between the configurations flips
//! schedulability exactly as in the paper.

use mcs_core::{degree_of_schedulability, multi_cluster_scheduling, AnalysisParams};
use mcs_model::{
    Application, Architecture, CanBusParams, GatewayParams, MessageId, NodeRole, Priority,
    PriorityAssignment, ProcessId, System, SystemConfig, TdmaConfig, TdmaSlot, Time, TtpBusParams,
};

const MS: fn(u64) -> Time = Time::from_millis;

struct Fixture {
    system: System,
    n1: mcs_model::NodeId,
    ng: mcs_model::NodeId,
}

/// G1 of Figure 1 mapped as in Figure 3: P1, P4 on the TT node N1;
/// P2, P3 on the ET node N2. Slot capacities of 8 bytes take 20 ms on the
/// wire (2.5 ms/byte); every CAN frame takes a flat 10 ms; C_T = 5 ms.
fn fixture(deadline_ms: u64) -> Fixture {
    let mut b = Architecture::builder();
    let n1 = b.add_node("N1", NodeRole::TimeTriggered);
    let n2 = b.add_node("N2", NodeRole::EventTriggered);
    let ng = b.add_node("NG", NodeRole::Gateway);
    b.ttp_params(TtpBusParams::new(Time::from_micros(2_500), Time::ZERO));
    b.can_params(CanBusParams::with_fixed_frame_time(MS(10)));
    let arch = b.build().expect("valid architecture");

    let mut ab = Application::builder();
    let g1 = ab.add_graph("G1", MS(240), MS(deadline_ms));
    let p1 = ab.add_process(g1, "P1", n1, MS(30));
    let p2 = ab.add_process(g1, "P2", n2, MS(20));
    let p3 = ab.add_process(g1, "P3", n2, MS(20));
    let p4 = ab.add_process(g1, "P4", n1, MS(30));
    ab.link(p1, p2, 4); // m1
    ab.link(p1, p3, 4); // m2
    ab.link(p2, p4, 4); // m3
    let app = ab.build(&arch).expect("valid application");

    let system = System::with_gateway(app, arch, GatewayParams::new(MS(5), MS(40)));
    Fixture { system, n1, ng }
}

fn priorities(p2_over_p3: bool) -> PriorityAssignment {
    let mut pri = PriorityAssignment::new();
    let (p2, p3) = (ProcessId::new(1), ProcessId::new(2));
    if p2_over_p3 {
        pri.set_process(p2, Priority::new(0));
        pri.set_process(p3, Priority::new(1));
    } else {
        pri.set_process(p3, Priority::new(0));
        pri.set_process(p2, Priority::new(1));
    }
    pri.set_message(MessageId::new(0), Priority::new(0)); // m1 highest
    pri.set_message(MessageId::new(1), Priority::new(1)); // m2
    pri.set_message(MessageId::new(2), Priority::new(2)); // m3
    pri
}

fn config_a(f: &Fixture) -> SystemConfig {
    let tdma = TdmaConfig::new(vec![
        TdmaSlot {
            node: f.ng,
            capacity_bytes: 8,
        },
        TdmaSlot {
            node: f.n1,
            capacity_bytes: 8,
        },
    ]);
    SystemConfig::new(tdma, priorities(false))
}

fn config_b(f: &Fixture) -> SystemConfig {
    let tdma = TdmaConfig::new(vec![
        TdmaSlot {
            node: f.n1,
            capacity_bytes: 8,
        },
        TdmaSlot {
            node: f.ng,
            capacity_bytes: 8,
        },
    ]);
    SystemConfig::new(tdma, priorities(false))
}

fn config_c(f: &Fixture) -> SystemConfig {
    let mut config = config_a(f);
    config.priorities = priorities(true);
    config
}

#[test]
fn case_a_offsets_match_the_paper() {
    let f = fixture(200);
    let outcome = multi_cluster_scheduling(&f.system, &config_a(&f), &AnalysisParams::default())
        .expect("analyzable");
    // m1 and m2 are packed into N1's slot of round 2, ending at 80 ms; the
    // earliest delivery to P2/P3 adds the 10 ms CAN frame: O2 = O3 = 90.
    // (The paper anchors the offset at the MBI arrival, 80 ms; the
    // worst-case completions O + J + w + C agree.)
    let t2 = outcome.process_timing(ProcessId::new(1));
    let t3 = outcome.process_timing(ProcessId::new(2));
    assert_eq!(t2.offset, MS(90));
    assert_eq!(t3.offset, MS(90));
    // P3 outranks P2, so P2 suffers exactly one preemption of C3 = 20 ms:
    // the paper's I2 = 20.
    assert_eq!(t2.delay, MS(20));
    assert_eq!(t3.delay, Time::ZERO);
    // J2 = 15 ms and the response times match the paper's annotated values:
    // r2 = J2 + I2 + C2 = 15 + 20 + 20 = 55, r3 = J3 + C3 = 25 + 20 = 45.
    assert_eq!(t2.jitter, MS(15));
    assert_eq!(t3.jitter, MS(25));
    assert_eq!(t2.response, MS(55));
    assert_eq!(t3.response, MS(45));
    // P1 is the first entry of N1's schedule table.
    assert_eq!(outcome.process_timing(ProcessId::new(0)).offset, Time::ZERO);
}

#[test]
fn case_a_misses_the_200ms_deadline() {
    let f = fixture(200);
    let outcome = multi_cluster_scheduling(&f.system, &config_a(&f), &AnalysisParams::default())
        .expect("analyzable");
    let degree = degree_of_schedulability(&f.system, &outcome);
    assert!(!degree.is_schedulable(), "the paper's case (a) misses");
    assert_eq!(outcome.graph_response(mcs_model::GraphId::new(0)), MS(250));
}

#[test]
fn reordering_slots_or_priorities_improves_the_response() {
    let f = fixture(200);
    let params = AnalysisParams::default();
    let g = mcs_model::GraphId::new(0);
    let ra = multi_cluster_scheduling(&f.system, &config_a(&f), &params)
        .expect("analyzable")
        .graph_response(g);
    let rb = multi_cluster_scheduling(&f.system, &config_b(&f), &params)
        .expect("analyzable")
        .graph_response(g);
    let rc = multi_cluster_scheduling(&f.system, &config_c(&f), &params)
        .expect("analyzable")
        .graph_response(g);
    // Figure 4's point: both transformations dominate configuration (a).
    assert!(rb < ra, "slot reordering must help: {rb} !< {ra}");
    assert!(rc < ra, "priority swap must help: {rc} !< {ra}");
    assert_eq!(ra, MS(250));
    assert_eq!(rb, MS(230));
    assert_eq!(rc, MS(210));
}

#[test]
fn a_deadline_between_the_configurations_flips_schedulability() {
    // With D_G1 = 240 ms our strict bounds reproduce Figure 4's shape
    // one-to-one: (a) misses, (b) and (c) meet.
    let f = fixture(240);
    let params = AnalysisParams::default();
    let da = degree_of_schedulability(
        &f.system,
        &multi_cluster_scheduling(&f.system, &config_a(&f), &params).expect("analyzable"),
    );
    let db = degree_of_schedulability(
        &f.system,
        &multi_cluster_scheduling(&f.system, &config_b(&f), &params).expect("analyzable"),
    );
    let dc = degree_of_schedulability(
        &f.system,
        &multi_cluster_scheduling(&f.system, &config_c(&f), &params).expect("analyzable"),
    );
    assert!(!da.is_schedulable(), "case (a) must miss");
    assert!(db.is_schedulable(), "case (b) must meet");
    assert!(dc.is_schedulable(), "case (c) must meet");
    // δΓ orders the schedulable alternatives by slack: (c) beats (b).
    assert!(dc.cost() < db.cost());
}

#[test]
fn buffer_bounds_cover_the_example_traffic() {
    let f = fixture(200);
    let outcome = multi_cluster_scheduling(&f.system, &config_a(&f), &AnalysisParams::default())
        .expect("analyzable");
    // Out_CAN holds at worst m1 and m2 together (4 + 4 bytes).
    assert_eq!(outcome.queues.out_can, 8);
    // Out_TTP holds at worst m3 alone.
    assert_eq!(outcome.queues.out_ttp, 4);
    // N2's output queue holds at worst m3 alone (m1/m2 are gateway traffic).
    assert_eq!(
        outcome.queues.out_node.get(&mcs_model::NodeId::new(1)),
        Some(&4)
    );
    assert_eq!(outcome.queues.total(), 16);
}

#[test]
fn paper_closed_form_fifo_bound_is_more_pessimistic() {
    let f = fixture(200);
    let tight = AnalysisParams::default();
    let paper = AnalysisParams {
        fifo_bound: mcs_core::FifoBound::PaperClosedForm,
        ..tight
    };
    let g = mcs_model::GraphId::new(0);
    let r_tight = multi_cluster_scheduling(&f.system, &config_a(&f), &tight)
        .expect("analyzable")
        .graph_response(g);
    let r_paper = multi_cluster_scheduling(&f.system, &config_a(&f), &paper)
        .expect("analyzable")
        .graph_response(g);
    assert!(
        r_paper >= r_tight,
        "closed form {r_paper} must not beat occurrence bound {r_tight}"
    );
}
