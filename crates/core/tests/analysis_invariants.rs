//! Integration tests of less-travelled analysis paths: gateway-resident
//! processes, multi-period applications, offset pins and local deadlines.

use mcs_core::{degree_of_schedulability, multi_cluster_scheduling, AnalysisParams};
use mcs_model::{
    Application, Architecture, GatewayParams, MessageId, NodeRole, Priority, PriorityAssignment,
    System, SystemConfig, TdmaConfig, TdmaSlot, Time,
};

const MS: fn(u64) -> Time = Time::from_millis;

fn two_cluster() -> (
    Architecture,
    mcs_model::NodeId,
    mcs_model::NodeId,
    mcs_model::NodeId,
) {
    let mut b = Architecture::builder();
    let n1 = b.add_node("N1", NodeRole::TimeTriggered);
    let n2 = b.add_node("N2", NodeRole::EventTriggered);
    let ng = b.add_node("NG", NodeRole::Gateway);
    (b.build().expect("valid"), n1, n2, ng)
}

fn tdma(ng: mcs_model::NodeId, n1: mcs_model::NodeId) -> TdmaConfig {
    TdmaConfig::new(vec![
        TdmaSlot {
            node: ng,
            capacity_bytes: 16,
        },
        TdmaSlot {
            node: n1,
            capacity_bytes: 16,
        },
    ])
}

#[test]
fn gateway_resident_process_can_send_to_the_ttc() {
    // An application process on the gateway CPU sends over TTP: the frame
    // placement must honour the sender's (priority-scheduled) completion.
    let (arch, n1, _, ng) = two_cluster();
    let mut ab = Application::builder();
    let g = ab.add_graph("G", MS(100), MS(100));
    let src = ab.add_process(g, "router_app", ng, MS(5));
    let dst = ab.add_process(g, "consumer", n1, MS(5));
    ab.link(src, dst, 8);
    let app = ab.build(&arch).expect("valid");
    let system = System::with_gateway(app, arch, GatewayParams::new(MS(1), MS(10)));

    let mut pri = PriorityAssignment::new();
    pri.set_process(src, Priority::new(0));
    let config = SystemConfig::new(tdma(ng, n1), pri);
    let outcome =
        multi_cluster_scheduling(&system, &config, &AnalysisParams::default()).expect("ok");
    // The gateway process suffers interference from the transfer process T.
    let t_src = outcome.process_timing(src);
    assert!(t_src.response >= MS(5));
    // The frame leaves after the sender's worst-case completion.
    let frame = outcome
        .schedule
        .frame(MessageId::new(0))
        .expect("frame placed");
    assert!(frame.slot_start >= t_src.worst_completion());
    // The TT consumer starts after the frame lands.
    assert!(outcome.process_timing(dst).offset >= frame.arrival);
    assert!(degree_of_schedulability(&system, &outcome).is_schedulable());
}

#[test]
fn graphs_with_different_periods_are_analyzed_over_the_hyperperiod() {
    let (arch, n1, n2, ng) = two_cluster();
    let mut ab = Application::builder();
    let fast = ab.add_graph("fast", MS(50), MS(50));
    let slow = ab.add_graph("slow", MS(75), MS(75));
    let f1 = ab.add_process(fast, "f1", n2, MS(5));
    let f2 = ab.add_process(fast, "f2", n2, MS(5));
    ab.link(f1, f2, 0);
    let s1 = ab.add_process(slow, "s1", n1, MS(5));
    let s2 = ab.add_process(slow, "s2", n2, MS(5));
    ab.link(s1, s2, 8);
    let app = ab.build(&arch).expect("valid");
    assert_eq!(app.hyperperiod(), MS(150));
    let system = System::new(app, arch);

    let mut pri = PriorityAssignment::new();
    pri.set_process(f1, Priority::new(0));
    pri.set_process(f2, Priority::new(1));
    pri.set_process(s2, Priority::new(2));
    pri.set_message(MessageId::new(0), Priority::new(0));
    let config = SystemConfig::new(tdma(ng, n1), pri);
    let outcome =
        multi_cluster_scheduling(&system, &config, &AnalysisParams::default()).expect("ok");
    assert!(outcome.converged);
    // The slow graph's ET process sees interference from the fast graph.
    let t_s2 = outcome.process_timing(s2);
    assert!(t_s2.response >= MS(5));
    assert!(degree_of_schedulability(&system, &outcome).is_schedulable());
}

#[test]
fn offset_pins_delay_tt_processes() {
    let (arch, n1, _, ng) = two_cluster();
    let mut ab = Application::builder();
    let g = ab.add_graph("G", MS(100), MS(100));
    let p = ab.add_process(g, "p", n1, MS(5));
    let app = ab.build(&arch).expect("valid");
    let system = System::new(app, arch);

    let mut config = SystemConfig::new(tdma(ng, n1), PriorityAssignment::new());
    let unpinned =
        multi_cluster_scheduling(&system, &config, &AnalysisParams::default()).expect("ok");
    assert_eq!(unpinned.process_timing(p).offset, Time::ZERO);

    config.offsets.pin_process(p, MS(30));
    let pinned =
        multi_cluster_scheduling(&system, &config, &AnalysisParams::default()).expect("ok");
    assert_eq!(pinned.process_timing(p).offset, MS(30));
}

#[test]
fn local_deadlines_enter_the_degree() {
    let (arch, n1, n2, ng) = two_cluster();
    let mut ab = Application::builder();
    let g = ab.add_graph("G", MS(200), MS(200));
    let a = ab.add_process(g, "a", n1, MS(10));
    let b = ab.add_process(g, "b", n2, MS(10));
    ab.link(a, b, 8);
    // A local deadline far tighter than anything achievable across the
    // gateway.
    ab.set_local_deadline(b, MS(5));
    let app = ab.build(&arch).expect("valid");
    let system = System::new(app, arch);

    let mut pri = PriorityAssignment::new();
    pri.set_process(b, Priority::new(0));
    pri.set_message(MessageId::new(0), Priority::new(0));
    let config = SystemConfig::new(tdma(ng, n1), pri);
    let outcome =
        multi_cluster_scheduling(&system, &config, &AnalysisParams::default()).expect("ok");
    let degree = degree_of_schedulability(&system, &outcome);
    assert!(!degree.is_schedulable(), "local deadline must be violated");
    assert!(degree.overrun > 0);
}

#[test]
fn unschedulable_overload_is_reported_not_errored() {
    // An ET node loaded beyond 100 %: the fixed points diverge, the
    // analysis clamps and reports, and the degree is "not schedulable".
    let (arch, n1, n2, ng) = two_cluster();
    let mut ab = Application::builder();
    let g = ab.add_graph("G", MS(100), MS(100));
    let mut pri = PriorityAssignment::new();
    for i in 0..3 {
        let p = ab.add_process(g, format!("hog{i}"), n2, MS(60));
        pri.set_process(p, Priority::new(i));
    }
    ab.add_process(g, "tt", n1, MS(1));
    let app = ab.build(&arch).expect("valid");
    let system = System::new(app, arch);
    let config = SystemConfig::new(tdma(ng, n1), pri);
    let outcome =
        multi_cluster_scheduling(&system, &config, &AnalysisParams::default()).expect("ok");
    assert!(!outcome.converged);
    let degree = degree_of_schedulability(&system, &outcome);
    assert!(!degree.is_schedulable());
}

#[test]
fn iterations_are_reported_and_bounded() {
    let fig = mcs_gen_free_figure4();
    let outcome = multi_cluster_scheduling(
        &fig.0,
        &fig.1,
        &AnalysisParams {
            max_outer_iterations: 4,
            ..AnalysisParams::default()
        },
    )
    .expect("ok");
    assert!(outcome.iterations >= 1 && outcome.iterations <= 4);
}

/// A minimal gateway-crossing system built without `mcs-gen` (dev-dep
/// cycles): TT → ET → TT chain.
fn mcs_gen_free_figure4() -> (System, SystemConfig) {
    let (arch, n1, n2, ng) = two_cluster();
    let mut ab = Application::builder();
    let g = ab.add_graph("G", MS(240), MS(240));
    let p1 = ab.add_process(g, "P1", n1, MS(30));
    let p2 = ab.add_process(g, "P2", n2, MS(20));
    let p4 = ab.add_process(g, "P4", n1, MS(30));
    ab.link(p1, p2, 4);
    ab.link(p2, p4, 4);
    let app = ab.build(&arch).expect("valid");
    let system = System::new(app, arch);
    let mut pri = PriorityAssignment::new();
    pri.set_process(p2, Priority::new(0));
    pri.set_message(MessageId::new(0), Priority::new(0));
    pri.set_message(MessageId::new(1), Priority::new(1));
    (system, SystemConfig::new(tdma(ng, n1), pri))
}
