//! Property-based tests of the core analysis fixed points.

use proptest::prelude::*;

use mcs_core::{
    fifo_delay, fifo_delay_occurrence, interference_delays, FifoFlow, TaskFlow, TtpQueueParams,
};
use mcs_model::Time;

fn arb_task(rank: u64) -> impl Strategy<Value = TaskFlow> {
    (100u64..10_000, 0u64..500, 0u64..2_000, 1u64..300).prop_map(
        move |(period, jitter, offset, wcet)| TaskFlow {
            rank,
            period: Time::from_ticks(period * 50),
            jitter: Time::from_ticks(jitter),
            offset: Time::from_ticks(offset),
            transaction: None,
            wcet: Time::from_ticks(wcet),
            blocking: Time::ZERO,
            response: Time::ZERO,
        },
    )
}

fn arb_fifo(rank: u64) -> impl Strategy<Value = FifoFlow> {
    (100u64..10_000, 0u64..500, 0u64..2_000, 1u32..32).prop_map(
        move |(period, jitter, offset, size)| FifoFlow {
            rank,
            period: Time::from_ticks(period * 50),
            jitter: Time::from_ticks(jitter),
            offset: Time::from_ticks(offset),
            transaction: None,
            size_bytes: size,
            response: Time::ZERO,
        },
    )
}

fn params() -> TtpQueueParams {
    TtpQueueParams {
        round: Time::from_ticks(1_000),
        slot_offset: Time::from_ticks(250),
        slot_capacity: 16,
        slot_duration: Time::from_ticks(250),
    }
}

proptest! {
    /// Interference delays include the blocking term and are monotone in
    /// higher-priority demand.
    #[test]
    fn interference_includes_blocking(
        tasks in proptest::collection::vec(arb_task(0), 1..6),
        blocking in 0u64..1_000,
    ) {
        let mut tasks: Vec<TaskFlow> = tasks
            .into_iter()
            .enumerate()
            .map(|(i, mut t)| {
                t.rank = i as u64;
                t
            })
            .collect();
        let last = tasks.len() - 1;
        tasks[last].blocking = Time::from_ticks(blocking);
        let horizon = Time::from_ticks(u64::MAX / 4);
        let w = interference_delays(&tasks, horizon);
        if let Some(w_last) = w[last] {
            prop_assert!(w_last >= Time::from_ticks(blocking));
        }
        // Highest priority task: exactly its own blocking.
        prop_assert_eq!(w[0], Some(tasks[0].blocking));
    }

    /// Growing a higher-priority WCET never shrinks a lower-priority delay.
    #[test]
    fn interference_is_monotone_in_wcet(
        mut tasks in proptest::collection::vec(arb_task(0), 2..6),
        extra in 1u64..500,
    ) {
        for (i, t) in tasks.iter_mut().enumerate() {
            t.rank = i as u64;
        }
        let horizon = Time::from_ticks(u64::MAX / 4);
        let before = interference_delays(&tasks, horizon);
        tasks[0].wcet += Time::from_ticks(extra);
        let after = interference_delays(&tasks, horizon);
        for (b, a) in before.iter().zip(&after).skip(1) {
            if let (Some(b), Some(a)) = (b, a) {
                prop_assert!(a >= b);
            }
        }
    }

    /// The occurrence-based FIFO bound is never looser than the paper's
    /// closed form, and both include at least one full drain.
    #[test]
    fn fifo_occurrence_refines_closed_form(
        flows in proptest::collection::vec(arb_fifo(0), 1..6),
    ) {
        let flows: Vec<FifoFlow> = flows
            .into_iter()
            .enumerate()
            .map(|(i, mut f)| {
                f.rank = i as u64;
                f
            })
            .collect();
        let params = params();
        let horizon = Time::from_ticks(u64::MAX / 4);
        for m in 0..flows.len() {
            let paper = fifo_delay(&flows, m, &params, horizon);
            let occ = fifo_delay_occurrence(&flows, m, &params, horizon);
            match (paper, occ) {
                (Some(p), Some(o)) => {
                    // Measured as worst-case arrival from the offset:
                    // O + J + w + C — the occurrence form is tighter.
                    let arrive_p = flows[m].offset + flows[m].jitter + p.delay;
                    let arrive_o = flows[m].offset + flows[m].jitter + o.delay;
                    prop_assert!(arrive_o <= arrive_p,
                        "occurrence {arrive_o} looser than closed form {arrive_p}");
                    prop_assert_eq!(p.backlog >= o.backlog, true);
                }
                (None, Some(_)) => prop_assert!(false, "closed form diverged first"),
                _ => {}
            }
        }
    }

    /// FIFO backlog grows with message sizes.
    #[test]
    fn fifo_backlog_monotone_in_sizes(
        flows in proptest::collection::vec(arb_fifo(0), 2..6),
        grow in 1u32..32,
    ) {
        let mut flows: Vec<FifoFlow> = flows
            .into_iter()
            .enumerate()
            .map(|(i, mut f)| {
                f.rank = i as u64;
                f
            })
            .collect();
        let params = params();
        let horizon = Time::from_ticks(u64::MAX / 4);
        let last = flows.len() - 1;
        let before = fifo_delay(&flows, last, &params, horizon);
        flows[0].size_bytes += grow;
        let after = fifo_delay(&flows, last, &params, horizon);
        if let (Some(b), Some(a)) = (before, after) {
            prop_assert!(a.backlog >= b.backlog);
            prop_assert!(a.delay >= b.delay);
        }
    }
}
